//! The workload zoo: twelve named, parameterizable micro-workloads, one
//! per canonical GPU performance pattern, each addressable by name over
//! the service wire (`"case": "named"`) and from the `gpa-analyze` CLI
//! (`--workload`).
//!
//! | Name | Pattern it exercises |
//! |------|----------------------|
//! | `vector_add` | streaming, perfectly coalesced global traffic |
//! | `saxpy` | streaming read-modify-write with an FMA |
//! | `strided_copy` | stride-8 global accesses wasting transaction bytes |
//! | `naive_transpose` | coalesced reads, fully uncoalesced column writes |
//! | `shared_transpose` | tile staging through padded (conflict-free) shared memory |
//! | `reduce_sum` | butterfly reduction, shared-memory traffic dominated |
//! | `dot_product` | fused multiply + butterfly reduction |
//! | `histogram` | skewed shared-memory atomics (contended bins) |
//! | `atomic_hotspot` | every lane hammering one shared word atomically |
//! | `shared_bank_conflict` | stride-2 shared accesses (2-way bank conflicts) |
//! | `random_access` | data-dependent gathers, uncoalesced |
//! | `vector_add_divergent` | intra-warp branch divergence on an odd/even split |
//!
//! Every workload is a [`CaseStudy`] with a CPU-reference verifier, built
//! from two scale knobs: `n` (elements, or the matrix dimension for the
//! transposes) and `seed` (deterministic input data). Regions are
//! allocated in declaration order at [`REGION_ALIGN`] — the same contract
//! as the service's custom-kernel arena — so a zoo workload and its
//! hand-built `KernelSpec::Custom` equivalent produce byte-identical
//! reports.

use crate::workflow::{CaseStudy, Region, TraceMode, Verifier};
use gpa_hw::KernelResources;
use gpa_isa::builder::{BuildError, KernelBuilder};
use gpa_isa::instr::{CmpOp, MemAddr, NumTy, Pred, Reg, SpecialReg, Src, Width};
use gpa_isa::Kernel;
use gpa_sim::{GlobalMemory, LaunchConfig};

/// Threads per block for every zoo workload (the transposes map the
/// 256 threads onto a 16×16 tile).
pub const THREADS: u32 = 256;

/// Region alignment: matches the service's custom-kernel arena
/// (`gpa_service::CUSTOM_REGION_ALIGN`), so region base addresses — and
/// therefore reports — are identical between a named workload and its
/// wire-encoded custom equivalent.
pub const REGION_ALIGN: u64 = 256;

/// Shared-memory histogram bins.
pub const HISTOGRAM_BINS: u32 = 64;

/// Distinct bins the skewed histogram input actually touches — the skew
/// is the point: it concentrates atomics onto few bins so contention
/// (not bandwidth) binds.
pub const HISTOGRAM_HOT_BINS: u32 = 4;

/// Atomic increments per histogram item (each item is inserted with
/// weight [`HISTOGRAM_REPEAT`]): keeps the atomic pipeline — not the two
/// coalesced global streams — the dominant cost.
pub const HISTOGRAM_REPEAT: u32 = 4;

/// Atomic adds per thread in `atomic_hotspot`.
pub const HOTSPOT_ITERS: u32 = 16;

/// Word stride of `strided_copy` (8 words = 32 bytes: every half-warp
/// transaction carries mostly unrequested bytes).
pub const COPY_STRIDE_WORDS: u32 = 8;

/// Shared load/store round trips in `shared_bank_conflict`.
pub const CONFLICT_ROUNDS: u32 = 8;

/// One zoo entry: the name clients address it by, a one-line
/// description, and the default problem size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Wire/CLI name (also the kernel name in reports).
    pub name: &'static str,
    /// One-line description for listings (`GET /v1/workloads`).
    pub description: &'static str,
    /// Default `n` when a request omits the knob.
    pub default_n: u32,
}

/// The zoo, in listing order.
pub const WORKLOADS: [Workload; 12] = [
    Workload {
        name: "vector_add",
        description: "streaming c[i] = a[i] + b[i], perfectly coalesced",
        default_n: 4096,
    },
    Workload {
        name: "saxpy",
        description: "y[i] = alpha * x[i] + y[i] (fused multiply-add)",
        default_n: 4096,
    },
    Workload {
        name: "strided_copy",
        description: "stride-8 copy wasting global transaction bytes",
        default_n: 4096,
    },
    Workload {
        name: "naive_transpose",
        description: "n x n transpose with uncoalesced column writes",
        default_n: 128,
    },
    Workload {
        name: "shared_transpose",
        description: "tiled transpose staged through padded shared memory",
        default_n: 128,
    },
    Workload {
        name: "reduce_sum",
        description: "per-block butterfly sum in shared memory",
        default_n: 4096,
    },
    Workload {
        name: "dot_product",
        description: "per-block dot partials via fmul + butterfly reduce",
        default_n: 4096,
    },
    Workload {
        name: "histogram",
        description: "64-bin shared histogram, skewed input (contended atomics)",
        default_n: 4096,
    },
    Workload {
        name: "atomic_hotspot",
        description: "every lane atomically increments one shared word",
        default_n: 4096,
    },
    Workload {
        name: "shared_bank_conflict",
        description: "stride-2 shared accesses: 2-way bank conflicts",
        default_n: 4096,
    },
    Workload {
        name: "random_access",
        description: "data-dependent gather through an index table",
        default_n: 4096,
    },
    Workload {
        name: "vector_add_divergent",
        description: "vector add with an odd/even intra-warp branch split",
        default_n: 4096,
    },
];

/// Look up a workload by name.
pub fn find(name: &str) -> Option<&'static Workload> {
    WORKLOADS.iter().find(|w| w.name == name)
}

/// Largest accepted `n` for the 1-D (element-count) workloads.
pub const MAX_ELEMS: u32 = 1 << 18;

/// Check the scale knobs for `name`.
///
/// # Errors
///
/// A message naming the violated constraint (unknown workload, or `n`
/// out of the workload's supported range).
pub fn validate(name: &str, n: u32) -> Result<(), String> {
    if find(name).is_none() {
        let names: Vec<&str> = WORKLOADS.iter().map(|w| w.name).collect();
        return Err(format!(
            "unknown workload `{name}`; available: {}",
            names.join(", ")
        ));
    }
    match name {
        "naive_transpose" | "shared_transpose" => {
            if !n.is_power_of_two() || !(64..=1024).contains(&n) {
                return Err(format!("{name} n={n} must be a power of two in 64..=1024"));
            }
        }
        _ => {
            if !n.is_multiple_of(THREADS) || !(THREADS..=MAX_ELEMS).contains(&n) {
                return Err(format!(
                    "{name} n={n} must be a multiple of {THREADS} in {THREADS}..={MAX_ELEMS}"
                ));
            }
        }
    }
    Ok(())
}

// ---- deterministic input data ----

/// SplitMix64 over `(seed, index)`, reduced to 32 bits. This stream is
/// part of the zoo's contract: a custom-kernel equivalent reproduces a
/// workload's inputs through [`data_f32`] / [`data_u32`].
fn raw(seed: u32, i: u64) -> u32 {
    let mut z = (u64::from(seed) << 32)
        ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as u32
}

/// Deterministic small pseudo-random `f32`s in `[-0.5, 0.5)` (multiples
/// of 1/256, so f32 sums stay exact-friendly).
pub fn data_f32(seed: u32, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| ((raw(seed, i as u64) >> 16) & 0xFF) as f32 / 256.0 - 0.5)
        .collect()
}

/// Deterministic pseudo-random `u32`s.
pub fn data_u32(seed: u32, len: usize) -> Vec<u32> {
    (0..len).map(|i| raw(seed, i as u64)).collect()
}

// ---- kernel construction helpers ----

struct Ids {
    tid: Reg,
    ctaid: Reg,
    gid: Reg,
}

/// Standard prologue: `gid = ctaid.x * ntid.x + tid.x`.
fn ids(b: &mut KernelBuilder) -> Result<Ids, BuildError> {
    let tid = b.alloc_reg()?;
    b.s2r(tid, SpecialReg::TidX);
    let ctaid = b.alloc_reg()?;
    b.s2r(ctaid, SpecialReg::CtaIdX);
    let ntid = b.alloc_reg()?;
    b.s2r(ntid, SpecialReg::NTidX);
    let gid = b.alloc_reg()?;
    b.imad(gid, Src::Reg(ctaid), Src::Reg(ntid), Src::Reg(tid));
    Ok(Ids { tid, ctaid, gid })
}

// ---- kernels ----

fn vector_add_kernel(divergent: bool) -> Result<Kernel, BuildError> {
    let name = if divergent {
        "vector_add_divergent"
    } else {
        "vector_add"
    };
    let mut b = KernelBuilder::new(name);
    b.set_threads(THREADS);
    let a_p = b.param_alloc();
    let b_p = b.param_alloc();
    let c_p = b.param_alloc();
    let ids = ids(&mut b)?;
    let off = b.alloc_reg()?;
    b.shl(off, Src::Reg(ids.gid), Src::Imm(2));
    let tmp = b.alloc_reg()?;
    let addr = b.alloc_reg()?;
    b.ld_param(tmp, a_p);
    b.iadd(addr, Src::Reg(off), Src::Reg(tmp));
    let va = b.alloc_reg()?;
    b.ld_global(va, MemAddr::new(Some(addr), 0), Width::B32);
    b.ld_param(tmp, b_p);
    b.iadd(addr, Src::Reg(off), Src::Reg(tmp));
    let vb = b.alloc_reg()?;
    b.ld_global(vb, MemAddr::new(Some(addr), 0), Width::B32);
    let vc = b.alloc_reg()?;
    if divergent {
        let zero = b.alloc_reg()?;
        b.mov_imm_f32(zero, 0.0);
        let parity = b.alloc_reg()?;
        b.and(parity, Src::Reg(ids.tid), Src::Imm(1));
        b.setp(
            Pred(0),
            CmpOp::Eq,
            NumTy::S32,
            Src::Reg(parity),
            Src::Imm(0),
        );
        b.bra_if(Pred(0), false, "even");
        // Odd lanes: same sum, plus two redundant adds of +0.0 — extra
        // work that only half of each warp executes.
        b.fadd(vc, Src::Reg(va), Src::Reg(vb));
        b.fadd(vc, Src::Reg(vc), Src::Reg(zero));
        b.fadd(vc, Src::Reg(vc), Src::Reg(zero));
        b.bra("join");
        b.label("even");
        b.fadd(vc, Src::Reg(va), Src::Reg(vb));
        b.label("join");
    } else {
        b.fadd(vc, Src::Reg(va), Src::Reg(vb));
    }
    b.ld_param(tmp, c_p);
    b.iadd(addr, Src::Reg(off), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(addr), 0), vc, Width::B32);
    b.exit();
    b.declare_resources(KernelResources::new(12, 0, THREADS));
    b.finish()
}

fn saxpy_kernel() -> Result<Kernel, BuildError> {
    let mut b = KernelBuilder::new("saxpy");
    b.set_threads(THREADS);
    let x_p = b.param_alloc();
    let y_p = b.param_alloc();
    let alpha_p = b.param_alloc();
    let ids = ids(&mut b)?;
    let off = b.alloc_reg()?;
    b.shl(off, Src::Reg(ids.gid), Src::Imm(2));
    let tmp = b.alloc_reg()?;
    let addr = b.alloc_reg()?;
    b.ld_param(tmp, x_p);
    b.iadd(addr, Src::Reg(off), Src::Reg(tmp));
    let vx = b.alloc_reg()?;
    b.ld_global(vx, MemAddr::new(Some(addr), 0), Width::B32);
    b.ld_param(tmp, y_p);
    b.iadd(addr, Src::Reg(off), Src::Reg(tmp));
    let vy = b.alloc_reg()?;
    b.ld_global(vy, MemAddr::new(Some(addr), 0), Width::B32);
    let va = b.alloc_reg()?;
    b.ld_param(va, alpha_p);
    b.fmad(vy, Src::Reg(vx), Src::Reg(va), Src::Reg(vy));
    b.st_global(MemAddr::new(Some(addr), 0), vy, Width::B32);
    b.exit();
    b.declare_resources(KernelResources::new(12, 0, THREADS));
    b.finish()
}

fn strided_copy_kernel() -> Result<Kernel, BuildError> {
    let mut b = KernelBuilder::new("strided_copy");
    b.set_threads(THREADS);
    let in_p = b.param_alloc();
    let out_p = b.param_alloc();
    let ids = ids(&mut b)?;
    let off = b.alloc_reg()?;
    // Byte offset = gid * stride * 4 = gid << 5.
    b.shl(off, Src::Reg(ids.gid), Src::Imm(5));
    let tmp = b.alloc_reg()?;
    let addr = b.alloc_reg()?;
    b.ld_param(tmp, in_p);
    b.iadd(addr, Src::Reg(off), Src::Reg(tmp));
    let v = b.alloc_reg()?;
    b.ld_global(v, MemAddr::new(Some(addr), 0), Width::B32);
    b.ld_param(tmp, out_p);
    b.iadd(addr, Src::Reg(off), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(addr), 0), v, Width::B32);
    b.exit();
    b.declare_resources(KernelResources::new(12, 0, THREADS));
    b.finish()
}

fn transpose_kernel(n: u32, shared: bool) -> Result<Kernel, BuildError> {
    let ln = n.trailing_zeros() as i32;
    let tiles = n / 16;
    let lt = tiles.trailing_zeros() as i32;
    let name = if shared {
        "shared_transpose"
    } else {
        "naive_transpose"
    };
    let mut b = KernelBuilder::new(name);
    b.set_threads(THREADS);
    let in_p = b.param_alloc();
    let out_p = b.param_alloc();
    // 16×17 f32 tile: the +1 column pad keeps the transposed reads
    // conflict-free.
    let sm = if shared {
        b.smem_alloc(16 * 17 * 4, 4)? as i32
    } else {
        0
    };
    let tid = b.alloc_reg()?;
    b.s2r(tid, SpecialReg::TidX);
    let ctaid = b.alloc_reg()?;
    b.s2r(ctaid, SpecialReg::CtaIdX);
    let tx = b.alloc_reg()?;
    b.and(tx, Src::Reg(tid), Src::Imm(15));
    let ty = b.alloc_reg()?;
    b.shr(ty, Src::Reg(tid), Src::Imm(4));
    let bx = b.alloc_reg()?;
    b.and(bx, Src::Reg(ctaid), Src::Imm(tiles as i32 - 1));
    let by = b.alloc_reg()?;
    b.shr(by, Src::Reg(ctaid), Src::Imm(lt));
    let row = b.alloc_reg()?;
    b.shl(row, Src::Reg(by), Src::Imm(4));
    b.iadd(row, Src::Reg(row), Src::Reg(ty));
    let col = b.alloc_reg()?;
    b.shl(col, Src::Reg(bx), Src::Imm(4));
    b.iadd(col, Src::Reg(col), Src::Reg(tx));
    let idx = b.alloc_reg()?;
    b.shl(idx, Src::Reg(row), Src::Imm(ln));
    b.iadd(idx, Src::Reg(idx), Src::Reg(col));
    let addr = b.alloc_reg()?;
    b.shl(addr, Src::Reg(idx), Src::Imm(2));
    let tmp = b.alloc_reg()?;
    b.ld_param(tmp, in_p);
    b.iadd(addr, Src::Reg(addr), Src::Reg(tmp));
    let v = b.alloc_reg()?;
    b.ld_global(v, MemAddr::new(Some(addr), 0), Width::B32);
    if shared {
        let sidx = b.alloc_reg()?;
        b.imad(sidx, Src::Reg(ty), Src::Imm(17), Src::Reg(tx));
        let saddr = b.alloc_reg()?;
        b.shl(saddr, Src::Reg(sidx), Src::Imm(2));
        b.st_shared(MemAddr::new(Some(saddr), sm), v, Width::B32);
        b.bar();
        b.imad(sidx, Src::Reg(tx), Src::Imm(17), Src::Reg(ty));
        b.shl(saddr, Src::Reg(sidx), Src::Imm(2));
        b.ld_shared(v, MemAddr::new(Some(saddr), sm), Width::B32);
        // Coalesced write of the transposed tile: row = bx·16 + ty,
        // col = by·16 + tx.
        b.shl(row, Src::Reg(bx), Src::Imm(4));
        b.iadd(row, Src::Reg(row), Src::Reg(ty));
        b.shl(col, Src::Reg(by), Src::Imm(4));
        b.iadd(col, Src::Reg(col), Src::Reg(tx));
        b.shl(idx, Src::Reg(row), Src::Imm(ln));
        b.iadd(idx, Src::Reg(idx), Src::Reg(col));
    } else {
        // Uncoalesced column write: out[col·n + row].
        b.shl(idx, Src::Reg(col), Src::Imm(ln));
        b.iadd(idx, Src::Reg(idx), Src::Reg(row));
    }
    b.shl(addr, Src::Reg(idx), Src::Imm(2));
    b.ld_param(tmp, out_p);
    b.iadd(addr, Src::Reg(addr), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(addr), 0), v, Width::B32);
    b.exit();
    let smem = if shared { 16 * 17 * 4 } else { 0 };
    b.declare_resources(KernelResources::new(
        if shared { 20 } else { 16 },
        smem,
        THREADS,
    ));
    b.finish()
}

/// Butterfly strides: after the eight steps every thread holds the full
/// 256-lane sum.
const BUTTERFLY: [i32; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

fn reduce_kernel(dot: bool) -> Result<Kernel, BuildError> {
    let name = if dot { "dot_product" } else { "reduce_sum" };
    let mut b = KernelBuilder::new(name);
    b.set_threads(THREADS);
    let a_p = b.param_alloc();
    let b_p = if dot { Some(b.param_alloc()) } else { None };
    let out_p = b.param_alloc();
    let sm = b.smem_alloc(THREADS * 4, 4)? as i32;
    let ids = ids(&mut b)?;
    let off = b.alloc_reg()?;
    b.shl(off, Src::Reg(ids.gid), Src::Imm(2));
    let tmp = b.alloc_reg()?;
    let addr = b.alloc_reg()?;
    b.ld_param(tmp, a_p);
    b.iadd(addr, Src::Reg(off), Src::Reg(tmp));
    let v = b.alloc_reg()?;
    b.ld_global(v, MemAddr::new(Some(addr), 0), Width::B32);
    if let Some(b_p) = b_p {
        b.ld_param(tmp, b_p);
        b.iadd(addr, Src::Reg(off), Src::Reg(tmp));
        let vb = b.alloc_reg()?;
        b.ld_global(vb, MemAddr::new(Some(addr), 0), Width::B32);
        b.fmul(v, Src::Reg(v), Src::Reg(vb));
    }
    let saddr = b.alloc_reg()?;
    b.shl(saddr, Src::Reg(ids.tid), Src::Imm(2));
    b.st_shared(MemAddr::new(Some(saddr), sm), v, Width::B32);
    b.bar();
    let pidx = b.alloc_reg()?;
    let paddr = b.alloc_reg()?;
    let pv = b.alloc_reg()?;
    for stride in BUTTERFLY {
        b.xor(pidx, Src::Reg(ids.tid), Src::Imm(stride));
        b.shl(paddr, Src::Reg(pidx), Src::Imm(2));
        b.ld_shared(pv, MemAddr::new(Some(paddr), sm), Width::B32);
        b.bar();
        b.fadd(v, Src::Reg(v), Src::Reg(pv));
        b.st_shared(MemAddr::new(Some(saddr), sm), v, Width::B32);
        b.bar();
    }
    b.ld_param(tmp, out_p);
    b.iadd(addr, Src::Reg(off), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(addr), 0), v, Width::B32);
    b.exit();
    b.declare_resources(KernelResources::new(16, THREADS * 4, THREADS));
    b.finish()
}

fn histogram_kernel() -> Result<Kernel, BuildError> {
    let mut b = KernelBuilder::new("histogram");
    b.set_threads(THREADS);
    let in_p = b.param_alloc();
    let out_p = b.param_alloc();
    let sm = b.smem_alloc(HISTOGRAM_BINS * 4, 4)? as i32;
    let ids = ids(&mut b)?;
    // Clear the bins: each of the 64 words is written (to zero) by four
    // lanes — redundant but branch-free.
    let zidx = b.alloc_reg()?;
    b.and(zidx, Src::Reg(ids.tid), Src::Imm(HISTOGRAM_BINS as i32 - 1));
    let zaddr = b.alloc_reg()?;
    b.shl(zaddr, Src::Reg(zidx), Src::Imm(2));
    let zero = b.alloc_reg()?;
    b.mov_imm(zero, 0);
    b.st_shared(MemAddr::new(Some(zaddr), sm), zero, Width::B32);
    b.bar();
    let off = b.alloc_reg()?;
    b.shl(off, Src::Reg(ids.gid), Src::Imm(2));
    let tmp = b.alloc_reg()?;
    let addr = b.alloc_reg()?;
    b.ld_param(tmp, in_p);
    b.iadd(addr, Src::Reg(off), Src::Reg(tmp));
    let v = b.alloc_reg()?;
    b.ld_global(v, MemAddr::new(Some(addr), 0), Width::B32);
    let baddr = b.alloc_reg()?;
    b.shl(baddr, Src::Reg(v), Src::Imm(2));
    let one = b.alloc_reg()?;
    b.mov_imm(one, 1);
    let old = b.alloc_reg()?;
    for _ in 0..HISTOGRAM_REPEAT {
        b.atom_shared_add(old, MemAddr::new(Some(baddr), sm), one);
    }
    b.bar();
    // Publish: out[ctaid·64 + bin] (four lanes store the same count).
    let cnt = b.alloc_reg()?;
    b.ld_shared(cnt, MemAddr::new(Some(zaddr), sm), Width::B32);
    let oidx = b.alloc_reg()?;
    b.shl(oidx, Src::Reg(ids.ctaid), Src::Imm(6));
    b.iadd(oidx, Src::Reg(oidx), Src::Reg(zidx));
    b.shl(oidx, Src::Reg(oidx), Src::Imm(2));
    b.ld_param(tmp, out_p);
    b.iadd(oidx, Src::Reg(oidx), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(oidx), 0), cnt, Width::B32);
    b.exit();
    b.declare_resources(KernelResources::new(20, HISTOGRAM_BINS * 4, THREADS));
    b.finish()
}

fn atomic_hotspot_kernel() -> Result<Kernel, BuildError> {
    let mut b = KernelBuilder::new("atomic_hotspot");
    b.set_threads(THREADS);
    let out_p = b.param_alloc();
    let sm = b.smem_alloc(4, 4)? as i32;
    let ids = ids(&mut b)?;
    let zero = b.alloc_reg()?;
    b.mov_imm(zero, 0);
    b.st_shared(MemAddr::new(None, sm), zero, Width::B32);
    b.bar();
    let one = b.alloc_reg()?;
    b.mov_imm(one, 1);
    let old = b.alloc_reg()?;
    for _ in 0..HOTSPOT_ITERS {
        b.atom_shared_add(old, MemAddr::new(None, sm), one);
    }
    b.bar();
    let cnt = b.alloc_reg()?;
    b.ld_shared(cnt, MemAddr::new(None, sm), Width::B32);
    let off = b.alloc_reg()?;
    b.shl(off, Src::Reg(ids.gid), Src::Imm(2));
    let tmp = b.alloc_reg()?;
    b.ld_param(tmp, out_p);
    b.iadd(off, Src::Reg(off), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(off), 0), cnt, Width::B32);
    b.exit();
    b.declare_resources(KernelResources::new(12, 4, THREADS));
    b.finish()
}

fn shared_bank_conflict_kernel() -> Result<Kernel, BuildError> {
    let mut b = KernelBuilder::new("shared_bank_conflict");
    b.set_threads(THREADS);
    let in_p = b.param_alloc();
    let out_p = b.param_alloc();
    // 512 words: thread t owns word 2t — stride-2, 2-way bank conflicts.
    let sm = b.smem_alloc(THREADS * 2 * 4, 4)? as i32;
    let ids = ids(&mut b)?;
    let off = b.alloc_reg()?;
    b.shl(off, Src::Reg(ids.gid), Src::Imm(2));
    let tmp = b.alloc_reg()?;
    let addr = b.alloc_reg()?;
    b.ld_param(tmp, in_p);
    b.iadd(addr, Src::Reg(off), Src::Reg(tmp));
    let v = b.alloc_reg()?;
    b.ld_global(v, MemAddr::new(Some(addr), 0), Width::B32);
    let saddr = b.alloc_reg()?;
    b.shl(saddr, Src::Reg(ids.tid), Src::Imm(3));
    b.st_shared(MemAddr::new(Some(saddr), sm), v, Width::B32);
    for _ in 0..CONFLICT_ROUNDS {
        b.ld_shared(v, MemAddr::new(Some(saddr), sm), Width::B32);
        b.st_shared(MemAddr::new(Some(saddr), sm), v, Width::B32);
    }
    b.ld_param(tmp, out_p);
    b.iadd(addr, Src::Reg(off), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(addr), 0), v, Width::B32);
    b.exit();
    b.declare_resources(KernelResources::new(12, THREADS * 2 * 4, THREADS));
    b.finish()
}

fn random_access_kernel() -> Result<Kernel, BuildError> {
    let mut b = KernelBuilder::new("random_access");
    b.set_threads(THREADS);
    let idx_p = b.param_alloc();
    let table_p = b.param_alloc();
    let out_p = b.param_alloc();
    let ids = ids(&mut b)?;
    let off = b.alloc_reg()?;
    b.shl(off, Src::Reg(ids.gid), Src::Imm(2));
    let tmp = b.alloc_reg()?;
    let addr = b.alloc_reg()?;
    b.ld_param(tmp, idx_p);
    b.iadd(addr, Src::Reg(off), Src::Reg(tmp));
    let iv = b.alloc_reg()?;
    b.ld_global(iv, MemAddr::new(Some(addr), 0), Width::B32);
    let taddr = b.alloc_reg()?;
    b.shl(taddr, Src::Reg(iv), Src::Imm(2));
    b.ld_param(tmp, table_p);
    b.iadd(taddr, Src::Reg(taddr), Src::Reg(tmp));
    let v = b.alloc_reg()?;
    b.ld_global(v, MemAddr::new(Some(taddr), 0), Width::B32);
    b.ld_param(tmp, out_p);
    b.iadd(addr, Src::Reg(off), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(addr), 0), v, Width::B32);
    b.exit();
    b.declare_resources(KernelResources::new(12, 0, THREADS));
    b.finish()
}

/// Build the named kernel at size `n` (only the transposes specialize on
/// `n`; the 1-D kernels derive everything from the launch).
///
/// # Errors
///
/// Propagates kernel-builder errors.
///
/// # Panics
///
/// Panics on an unknown name — call [`validate`] first.
pub fn kernel(name: &str, n: u32) -> Result<Kernel, BuildError> {
    match name {
        "vector_add" => vector_add_kernel(false),
        "vector_add_divergent" => vector_add_kernel(true),
        "saxpy" => saxpy_kernel(),
        "strided_copy" => strided_copy_kernel(),
        "naive_transpose" => transpose_kernel(n, false),
        "shared_transpose" => transpose_kernel(n, true),
        "reduce_sum" => reduce_kernel(false),
        "dot_product" => reduce_kernel(true),
        "histogram" => histogram_kernel(),
        "atomic_hotspot" => atomic_hotspot_kernel(),
        "shared_bank_conflict" => shared_bank_conflict_kernel(),
        "random_access" => random_access_kernel(),
        other => panic!("unknown zoo workload `{other}`"),
    }
}

// ---- study assembly ----

/// Allocate a region at the zoo/custom alignment and write `words`.
fn alloc_words(gmem: &mut GlobalMemory, words: &[u32]) -> u64 {
    let base = gmem.alloc(words.len() as u64 * 4, REGION_ALIGN);
    for (i, w) in words.iter().enumerate() {
        gmem.write_u32(base + i as u64 * 4, *w).expect("in bounds");
    }
    base
}

fn alloc_zero(gmem: &mut GlobalMemory, bytes: u64) -> u64 {
    gmem.alloc(bytes, REGION_ALIGN)
}

fn f32_words(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Compare a device region against expected words.
fn check_words(gmem: &GlobalMemory, base: u64, expect: &[u32], what: &str) -> Result<(), String> {
    let got = gmem
        .read_u32s(base, expect.len())
        .map_err(|e| format!("{what} unreadable: {e:?}"))?;
    for (i, (g, w)) in got.iter().zip(expect).enumerate() {
        if g != w {
            return Err(format!("{what}[{i}] = {g:#010x}, reference {w:#010x}"));
        }
    }
    Ok(())
}

/// The host-side butterfly: replicates the kernel's pairing order
/// exactly, so f32 results match bit for bit.
fn butterfly_block(vals: &mut [f32]) {
    debug_assert_eq!(vals.len(), THREADS as usize);
    for stride in BUTTERFLY {
        let prev = vals.to_vec();
        for (t, v) in vals.iter_mut().enumerate() {
            *v = prev[t] + prev[t ^ stride as usize];
        }
    }
}

struct Built {
    kernel: Kernel,
    launch: LaunchConfig,
    params: Vec<u32>,
    gmem: GlobalMemory,
    regions: Vec<Region>,
    verify: Verifier,
}

fn build_vector_add(n: u32, seed: u32, divergent: bool) -> Built {
    let kernel = vector_add_kernel(divergent).expect("zoo kernel builds");
    let a = data_f32(seed, n as usize);
    let bv = data_f32(seed.wrapping_add(1), n as usize);
    let mut gmem = GlobalMemory::new();
    let a_dev = alloc_words(&mut gmem, &f32_words(&a));
    let b_dev = alloc_words(&mut gmem, &f32_words(&bv));
    let c_dev = alloc_zero(&mut gmem, u64::from(n) * 4);
    let expect: Vec<u32> = a
        .iter()
        .zip(&bv)
        .map(|(x, y)| {
            let mut s = x + y;
            if divergent {
                // Odd lanes add +0.0 twice; IEEE keeps the value (and
                // normalizes any -0.0, which our data cannot produce).
                s = s + 0.0 + 0.0;
            }
            s.to_bits()
        })
        .collect();
    // Even lanes skip the extra adds; both paths round identically, so
    // one expectation covers the whole vector.
    let len = u64::from(n) * 4;
    Built {
        kernel,
        launch: LaunchConfig::new_1d(n / THREADS, THREADS),
        params: vec![a_dev as u32, b_dev as u32, c_dev as u32],
        gmem,
        regions: vec![
            Region::new("a", a_dev, len),
            Region::new("b", b_dev, len),
            Region::new("c", c_dev, len),
        ],
        verify: Box::new(move |g| check_words(g, c_dev, &expect, "c")),
    }
}

fn build_saxpy(n: u32, seed: u32) -> Built {
    let kernel = saxpy_kernel().expect("zoo kernel builds");
    let alpha = 1.5f32;
    let x = data_f32(seed, n as usize);
    let y = data_f32(seed.wrapping_add(1), n as usize);
    let mut gmem = GlobalMemory::new();
    let x_dev = alloc_words(&mut gmem, &f32_words(&x));
    let y_dev = alloc_words(&mut gmem, &f32_words(&y));
    let expect: Vec<u32> = x
        .iter()
        .zip(&y)
        .map(|(xi, yi)| xi.mul_add(alpha, *yi).to_bits())
        .collect();
    let len = u64::from(n) * 4;
    Built {
        kernel,
        launch: LaunchConfig::new_1d(n / THREADS, THREADS),
        params: vec![x_dev as u32, y_dev as u32, alpha.to_bits()],
        gmem,
        regions: vec![Region::new("x", x_dev, len), Region::new("y", y_dev, len)],
        verify: Box::new(move |g| check_words(g, y_dev, &expect, "y")),
    }
}

fn build_strided_copy(n: u32, seed: u32) -> Built {
    let kernel = strided_copy_kernel().expect("zoo kernel builds");
    let words = (n * COPY_STRIDE_WORDS) as usize;
    let data = data_u32(seed, words);
    let mut gmem = GlobalMemory::new();
    let in_dev = alloc_words(&mut gmem, &data);
    let out_dev = alloc_zero(&mut gmem, words as u64 * 4);
    let expect: Vec<u32> = (0..words)
        .map(|i| {
            if (i as u32).is_multiple_of(COPY_STRIDE_WORDS) {
                data[i]
            } else {
                0
            }
        })
        .collect();
    let len = words as u64 * 4;
    Built {
        kernel,
        launch: LaunchConfig::new_1d(n / THREADS, THREADS),
        params: vec![in_dev as u32, out_dev as u32],
        gmem,
        regions: vec![
            Region::new("in", in_dev, len),
            Region::new("out", out_dev, len),
        ],
        verify: Box::new(move |g| check_words(g, out_dev, &expect, "out")),
    }
}

fn build_transpose(n: u32, seed: u32, shared: bool) -> Built {
    let kernel = transpose_kernel(n, shared).expect("zoo kernel builds");
    let elems = (n * n) as usize;
    let data = data_f32(seed, elems);
    let mut gmem = GlobalMemory::new();
    let in_dev = alloc_words(&mut gmem, &f32_words(&data));
    let out_dev = alloc_zero(&mut gmem, elems as u64 * 4);
    let nn = n as usize;
    let expect: Vec<u32> = (0..elems)
        .map(|i| {
            let (r, c) = (i / nn, i % nn);
            data[c * nn + r].to_bits()
        })
        .collect();
    let tiles = n / 16;
    let len = elems as u64 * 4;
    Built {
        kernel,
        launch: LaunchConfig::new_1d(tiles * tiles, THREADS),
        params: vec![in_dev as u32, out_dev as u32],
        gmem,
        regions: vec![
            Region::new("in", in_dev, len),
            Region::new("out", out_dev, len),
        ],
        verify: Box::new(move |g| check_words(g, out_dev, &expect, "out")),
    }
}

fn build_reduce(n: u32, seed: u32, dot: bool) -> Built {
    let kernel = reduce_kernel(dot).expect("zoo kernel builds");
    let a = data_f32(seed, n as usize);
    let bv = data_f32(seed.wrapping_add(1), n as usize);
    let mut gmem = GlobalMemory::new();
    let a_dev = alloc_words(&mut gmem, &f32_words(&a));
    let b_dev = if dot {
        Some(alloc_words(&mut gmem, &f32_words(&bv)))
    } else {
        None
    };
    let out_dev = alloc_zero(&mut gmem, u64::from(n) * 4);
    let mut expect = Vec::with_capacity(n as usize);
    for block in a.chunks(THREADS as usize).zip(bv.chunks(THREADS as usize)) {
        let mut vals: Vec<f32> = if dot {
            block.0.iter().zip(block.1).map(|(x, y)| x * y).collect()
        } else {
            block.0.to_vec()
        };
        butterfly_block(&mut vals);
        expect.extend(vals.iter().map(|v| v.to_bits()));
    }
    let len = u64::from(n) * 4;
    let mut params = vec![a_dev as u32];
    let mut regions = vec![Region::new("a", a_dev, len)];
    if let Some(b_dev) = b_dev {
        params.push(b_dev as u32);
        regions.push(Region::new("b", b_dev, len));
    }
    params.push(out_dev as u32);
    regions.push(Region::new("out", out_dev, len));
    Built {
        kernel,
        launch: LaunchConfig::new_1d(n / THREADS, THREADS),
        params,
        gmem,
        regions,
        verify: Box::new(move |g| check_words(g, out_dev, &expect, "out")),
    }
}

fn build_histogram(n: u32, seed: u32) -> Built {
    let kernel = histogram_kernel().expect("zoo kernel builds");
    // Skewed bins: only HISTOGRAM_HOT_BINS of the 64 are populated, so
    // same-bin atomics within each half-warp serialize heavily.
    let values: Vec<u32> = data_u32(seed, n as usize)
        .into_iter()
        .map(|v| v & (HISTOGRAM_HOT_BINS - 1))
        .collect();
    let mut gmem = GlobalMemory::new();
    let in_dev = alloc_words(&mut gmem, &values);
    let blocks = n / THREADS;
    let out_words = (blocks * HISTOGRAM_BINS) as usize;
    let out_dev = alloc_zero(&mut gmem, out_words as u64 * 4);
    let mut expect = vec![0u32; out_words];
    for (i, v) in values.iter().enumerate() {
        let block = i / THREADS as usize;
        expect[block * HISTOGRAM_BINS as usize + *v as usize] += HISTOGRAM_REPEAT;
    }
    Built {
        kernel,
        launch: LaunchConfig::new_1d(blocks, THREADS),
        params: vec![in_dev as u32, out_dev as u32],
        gmem,
        regions: vec![
            Region::new("in", in_dev, u64::from(n) * 4),
            Region::new("out", out_dev, out_words as u64 * 4),
        ],
        verify: Box::new(move |g| check_words(g, out_dev, &expect, "out")),
    }
}

fn build_atomic_hotspot(n: u32, _seed: u32) -> Built {
    let kernel = atomic_hotspot_kernel().expect("zoo kernel builds");
    let mut gmem = GlobalMemory::new();
    let out_dev = alloc_zero(&mut gmem, u64::from(n) * 4);
    let expect = vec![THREADS * HOTSPOT_ITERS; n as usize];
    Built {
        kernel,
        launch: LaunchConfig::new_1d(n / THREADS, THREADS),
        params: vec![out_dev as u32],
        gmem,
        regions: vec![Region::new("out", out_dev, u64::from(n) * 4)],
        verify: Box::new(move |g| check_words(g, out_dev, &expect, "out")),
    }
}

fn build_shared_bank_conflict(n: u32, seed: u32) -> Built {
    let kernel = shared_bank_conflict_kernel().expect("zoo kernel builds");
    let data = data_u32(seed, n as usize);
    let mut gmem = GlobalMemory::new();
    let in_dev = alloc_words(&mut gmem, &data);
    let out_dev = alloc_zero(&mut gmem, u64::from(n) * 4);
    let expect = data.clone();
    let len = u64::from(n) * 4;
    Built {
        kernel,
        launch: LaunchConfig::new_1d(n / THREADS, THREADS),
        params: vec![in_dev as u32, out_dev as u32],
        gmem,
        regions: vec![
            Region::new("in", in_dev, len),
            Region::new("out", out_dev, len),
        ],
        verify: Box::new(move |g| check_words(g, out_dev, &expect, "out")),
    }
}

fn build_random_access(n: u32, seed: u32) -> Built {
    let kernel = random_access_kernel().expect("zoo kernel builds");
    let idx: Vec<u32> = data_u32(seed, n as usize)
        .into_iter()
        .map(|v| v % n)
        .collect();
    let table = data_u32(seed.wrapping_add(1), n as usize);
    let mut gmem = GlobalMemory::new();
    let idx_dev = alloc_words(&mut gmem, &idx);
    let table_dev = alloc_words(&mut gmem, &table);
    let out_dev = alloc_zero(&mut gmem, u64::from(n) * 4);
    let expect: Vec<u32> = idx.iter().map(|i| table[*i as usize]).collect();
    let len = u64::from(n) * 4;
    Built {
        kernel,
        launch: LaunchConfig::new_1d(n / THREADS, THREADS),
        params: vec![idx_dev as u32, table_dev as u32, out_dev as u32],
        gmem,
        regions: vec![
            Region::new("idx", idx_dev, len),
            Region::new("table", table_dev, len),
            Region::new("out", out_dev, len),
        ],
        verify: Box::new(move |g| check_words(g, out_dev, &expect, "out")),
    }
}

/// Prepare the named workload as a full [`CaseStudy`] (kernel, memory
/// image, regions, CPU-reference verifier). The study declares no
/// algorithmic flop count (consumers fall back to the simulator's
/// dynamic count — the same accounting a custom-kernel request gets)
/// and uses [`TraceMode::Auto`], again matching the custom path.
///
/// # Panics
///
/// Panics when [`validate`]`(name, n)` would reject the knobs; the
/// service request path validates before calling.
pub fn case(name: &str, n: u32, seed: u32) -> CaseStudy {
    validate(name, n).unwrap_or_else(|e| panic!("{e}"));
    let built = match name {
        "vector_add" => build_vector_add(n, seed, false),
        "vector_add_divergent" => build_vector_add(n, seed, true),
        "saxpy" => build_saxpy(n, seed),
        "strided_copy" => build_strided_copy(n, seed),
        "naive_transpose" => build_transpose(n, seed, false),
        "shared_transpose" => build_transpose(n, seed, true),
        "reduce_sum" => build_reduce(n, seed, false),
        "dot_product" => build_reduce(n, seed, true),
        "histogram" => build_histogram(n, seed),
        "atomic_hotspot" => build_atomic_hotspot(n, seed),
        "shared_bank_conflict" => build_shared_bank_conflict(n, seed),
        "random_access" => build_random_access(n, seed),
        _ => unreachable!("validated above"),
    };
    CaseStudy::new(
        format!("{name} n={n} seed={seed}"),
        built.kernel,
        built.launch,
        built.params,
        built.gmem,
        built.regions,
        TraceMode::Auto,
        0,
        Some(built.verify),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::run_study;
    use gpa_core::Model;
    use gpa_hw::Machine;
    use gpa_sim::Threads;
    use gpa_ubench::{MeasureOpts, ThroughputCurves};
    use std::sync::OnceLock;

    fn machine() -> &'static Machine {
        static M: OnceLock<Machine> = OnceLock::new();
        M.get_or_init(Machine::gtx285)
    }

    fn model() -> Model<'static> {
        static C: OnceLock<ThroughputCurves> = OnceLock::new();
        let curves =
            C.get_or_init(|| ThroughputCurves::measure_with(machine(), MeasureOpts::quick()));
        Model::new(machine(), curves.clone())
    }

    #[test]
    fn every_workload_verifies_against_its_reference() {
        let mut m = model();
        for w in WORKLOADS {
            let n = match w.name {
                "naive_transpose" | "shared_transpose" => 64,
                _ => 1024,
            };
            let mut study = case(w.name, n, 7);
            run_study(machine(), &mut m, &mut study, Threads::from(1), None)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            study.check().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn every_workload_round_trips_through_asm() {
        for w in WORKLOADS {
            let n = match w.name {
                "naive_transpose" | "shared_transpose" => 128,
                _ => w.default_n,
            };
            let k = kernel(w.name, n).unwrap();
            let text = gpa_isa::asm::kernel_to_asm(&k);
            let back =
                gpa_isa::asm::parse_kernel(&text).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert_eq!(back, k, "{} asm round trip", w.name);
        }
    }

    #[test]
    fn validate_rejects_bad_scales() {
        assert!(validate("vector_add", 4096).is_ok());
        assert!(validate("vector_add", 100).is_err());
        assert!(validate("vector_add", 0).is_err());
        assert!(validate("naive_transpose", 128).is_ok());
        assert!(validate("naive_transpose", 96).is_err());
        assert!(validate("naive_transpose", 2048).is_err());
        assert!(validate("warp_drive", 256).is_err());
        assert!(validate("histogram", MAX_ELEMS + 256).is_err());
    }

    #[test]
    fn seeds_change_data_deterministically() {
        assert_eq!(data_u32(1, 16), data_u32(1, 16));
        assert_ne!(data_u32(1, 16), data_u32(2, 16));
        let f = data_f32(3, 64);
        assert!(f.iter().all(|v| (-0.5..0.5).contains(v)));
    }

    #[test]
    fn atomic_workloads_report_contention() {
        let mut m = model();
        let mut study = case("atomic_hotspot", 1024, 1);
        let run = run_study(machine(), &mut m, &mut study, Threads::from(1), None).unwrap();
        assert!(
            run.analysis.atomic_contention_factor > 8.0,
            "hotspot contention ×{:.2}",
            run.analysis.atomic_contention_factor
        );
        assert_eq!(
            run.analysis.bottleneck,
            gpa_core::Component::AtomicUnit,
            "hotspot bottleneck {:?}",
            run.analysis.bottleneck
        );
        let mut study = case("histogram", 1024, 1);
        let run = run_study(machine(), &mut m, &mut study, Threads::from(1), None).unwrap();
        assert!(
            run.analysis.atomic_contention_factor > 1.1,
            "histogram contention ×{:.2}",
            run.analysis.atomic_contention_factor
        );
    }

    #[test]
    fn bank_conflict_workload_is_conflicted() {
        let mut m = model();
        let mut study = case("shared_bank_conflict", 1024, 1);
        let run = run_study(machine(), &mut m, &mut study, Threads::from(1), None).unwrap();
        assert!(
            run.analysis.bank_conflict_factor > 1.5,
            "factor {:.2}",
            run.analysis.bank_conflict_factor
        );
    }
}
