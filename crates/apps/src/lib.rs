#![warn(missing_docs)]

//! Case studies (paper §5): three real-world workloads, one per bottleneck.
//!
//! | Module | Application | Paper's finding |
//! |--------|-------------|-----------------|
//! | [`matmul`] | dense matrix multiply (Volkov-style register tiling) | instruction-pipeline-bound at 8×8/16×16 tiles; shifts to shared memory at 32×32 because occupancy drops to 6 warps (§5.1) |
//! | [`tridiag`] | cyclic-reduction tridiagonal solver | shared-memory-bound from doubling bank conflicts; padding (CR-NBC) removes them for ≈1.6× (§5.2) |
//! | [`spmv`] | sparse matrix–vector multiply (ELL / blocked ELL) | global-memory-bound; interleaving the vector cuts gather bytes, +18% over the prior best (§5.3) |
//!
//! [`zoo`] complements the case studies with twelve small named
//! workloads — one per canonical performance pattern (coalesced
//! streaming, strided/uncoalesced access, bank conflicts, contended
//! atomics, divergence, …) — addressable by name from the CLI and the
//! service wire.
//!
//! Each module provides the kernels (built with `gpa_isa::KernelBuilder`),
//! a CPU reference for functional verification, and a driver that runs the
//! full paper workflow: functional simulation → info extraction → model
//! analysis → timing-simulator measurement. [`workflow`] holds the shared
//! driver.

pub mod matmul;
pub mod spmv;
pub mod tridiag;
pub mod workflow;
pub mod zoo;

pub use workflow::{CaseError, CaseOpts, CaseRun, CaseStudy, TraceMode};
