//! Cyclic-reduction tridiagonal solver (paper §5.2).
//!
//! Solves many independent tridiagonal systems, one per block, entirely in
//! shared memory: forward reduction halves the system `log2(n)` times, a
//! base step solves the last equation, and backward substitution unwinds.
//! The memory stride doubles every forward step, so plain **CR** suffers
//! 2-way, then 4-way, … bank conflicts while the number of shared-memory
//! transactions stays flat instead of halving (paper Figure 7b). **CR-NBC**
//! pads one word per 16 — element *i* lives at word `i + i/16` — which
//! redirects conflicting accesses to free banks and shifts the bottleneck
//! to the instruction pipeline for a ≈1.6× speedup (paper Figure 8).
//!
//! Implementation notes mirroring the paper:
//! * each algorithmic step ends in `bar.sync`, so steps are the model's
//!   synchronization stages; with one resident block per SM (the 8 KB
//!   footprint allows no more) the stages serialize (paper §3);
//! * warps keep all 32 lanes active with wrap-around addressing
//!   (`index & (n-1)`) and guard only the stores, the reason the paper's
//!   steps 4–9 "have identical performance characteristics": a full warp
//!   of distinct same-bank addresses serializes 16-ways regardless of how
//!   few lanes carry useful work;
//! * the solution is written into the `d` array in place, keeping the
//!   footprint at four arrays.

use crate::workflow::{run_study, CaseError, CaseRun, CaseStudy, Region, TraceMode};
use gpa_core::Model;
use gpa_hw::{KernelResources, Machine};
use gpa_isa::builder::{BuildError, KernelBuilder};
use gpa_isa::instr::{CmpOp, MemAddr, NumTy, Pred, Reg, SpecialReg, Src, Width};
use gpa_isa::Kernel;
use gpa_sim::{GlobalMemory, LaunchConfig, Threads};

/// Threads per block (the paper's configuration for 512-equation systems).
pub const THREADS: u32 = 256;

/// Shared-memory word index of logical element `i`.
fn pad_index(i: u32, padded: bool) -> u32 {
    if padded {
        i + i / 16
    } else {
        i
    }
}

/// Bytes of one shared array for an `n`-equation system.
fn array_bytes(n: u32, padded: bool) -> u32 {
    pad_index(n - 1, padded) * 4 + 4
}

/// Declared resources: four shared arrays plus the GT200 parameter area.
pub fn resources(n: u32, padded: bool) -> KernelResources {
    KernelResources::new(16, 4 * array_bytes(n, padded) + 256, THREADS)
}

/// Emit code computing the shared byte offset of (possibly padded) element
/// index held in `idx` (result in `out`, `idx` preserved).
fn emit_pad(b: &mut KernelBuilder, out: Reg, idx: Reg, padded: bool) {
    if padded {
        b.shr(out, Src::Reg(idx), Src::Imm(4));
        b.iadd(out, Src::Reg(out), Src::Reg(idx));
        b.shl(out, Src::Reg(out), Src::Imm(2));
    } else {
        b.shl(out, Src::Reg(idx), Src::Imm(2));
    }
}

/// Build the CR (or CR-NBC when `padded`) kernel for `n`-equation systems.
///
/// Parameters: `a, b, c, d` input arrays (system-major `nsys × n`) and the
/// solution output, five pointers.
///
/// # Panics
///
/// Panics unless `n` is a power of two with `n = 2·THREADS`.
///
/// # Errors
///
/// Propagates kernel-builder errors.
#[allow(clippy::too_many_lines)]
pub fn kernel(n: u32, padded: bool) -> Result<Kernel, BuildError> {
    assert!(n.is_power_of_two() && (64..=1024).contains(&n));
    assert_eq!(n, 2 * THREADS, "one thread loads two elements");
    let steps = n.trailing_zeros(); // log2(n)
    let ab = array_bytes(n, padded) as i32; // shared array stride
    let mask = (n - 1) as i32;

    let mut bld = KernelBuilder::new(if padded { "cr_nbc" } else { "cr" });
    let b = &mut bld;
    b.set_threads(THREADS);
    let a_p = b.param_alloc();
    let b_p = b.param_alloc();
    let c_p = b.param_alloc();
    let d_p = b.param_alloc();
    let x_p = b.param_alloc();
    // Four shared arrays at offsets 0, ab, 2·ab, 3·ab.
    let _ = b.smem_alloc(4 * ab as u32, 4)?;

    let tid = b.alloc_reg()?;
    b.s2r(tid, SpecialReg::TidX);
    // Base of this block's system in each global array: ctaid.x · n · 4.
    let sysoff = b.alloc_reg()?;
    b.s2r(sysoff, SpecialReg::CtaIdX);
    b.imul(sysoff, Src::Reg(sysoff), Src::Imm((n * 4) as i32));

    let m1 = b.alloc_reg()?; // constant −1.0
    b.mov_imm_f32(m1, -1.0);

    let t0 = b.alloc_reg()?;
    let t1 = b.alloc_reg()?;
    let v = b.alloc_reg()?;

    // ---- Stage 0: load the system into shared memory (coalesced) ----
    let goff = b.alloc_reg()?; // global byte offset of element i
    let soff = b.alloc_reg()?; // shared byte offset of element i
    for half in 0..2u32 {
        // i = tid + half·THREADS
        b.iadd(t0, Src::Reg(tid), Src::Imm((half * THREADS) as i32));
        b.shl(goff, Src::Reg(t0), Src::Imm(2));
        b.iadd(goff, Src::Reg(goff), Src::Reg(sysoff));
        emit_pad(b, soff, t0, padded);
        for (arr, param) in [(0i32, a_p), (1, b_p), (2, c_p), (3, d_p)] {
            b.ld_param(t1, param);
            b.iadd(t1, Src::Reg(t1), Src::Reg(goff));
            b.ld_global(v, MemAddr::new(Some(t1), 0), Width::B32);
            b.st_shared(MemAddr::new(Some(soff), arr * ab), v, Width::B32);
        }
    }
    b.bar();

    // Work registers for the reduction.
    let off_i = b.alloc_reg()?;
    let off_im = b.alloc_reg()?;
    let off_ip = b.alloc_reg()?;
    let (ai, bi, ci, di) = (
        b.alloc_reg()?,
        b.alloc_reg()?,
        b.alloc_reg()?,
        b.alloc_reg()?,
    );
    let (am, bm, cm, dm) = (
        b.alloc_reg()?,
        b.alloc_reg()?,
        b.alloc_reg()?,
        b.alloc_reg()?,
    );
    let (ap, bp, cp, dp) = (
        b.alloc_reg()?,
        b.alloc_reg()?,
        b.alloc_reg()?,
        b.alloc_reg()?,
    );
    let k1 = b.alloc_reg()?;
    let k2 = b.alloc_reg()?;

    // ---- Forward reduction: steps s = 1..=log2(n) (paper: "forward
    // reduction requires log2(n) steps") ----
    for s in 1..=steps {
        let h = 1i32 << (s - 1);
        let active = (n >> s) as i32;
        // Whole warps past the active range skip straight to the barrier
        // (a uniform, non-divergent branch); the last active warp keeps
        // all 32 lanes busy with wrapped addresses. This is why the
        // paper's per-step transaction count stays flat: fewer active
        // warps × stronger conflicts = constant.
        let active_ceil = ((active as u32).div_ceil(32) * 32) as i32;
        b.setp(
            Pred(1),
            CmpOp::Ge,
            NumTy::S32,
            Src::Reg(tid),
            Src::Imm(active_ceil),
        );
        b.bra_if(Pred(1), false, format!("fwd_skip_{s}"));
        // i = ((tid + 1) << s) − 1, wrapped to keep all 32 lanes busy.
        b.iadd(t0, Src::Reg(tid), Src::Imm(1));
        b.shl(t0, Src::Reg(t0), Src::Imm(s as i32));
        b.iadd(t0, Src::Reg(t0), Src::Imm(-1));
        b.and(t0, Src::Reg(t0), Src::Imm(mask));
        // Neighbour indices, wrapped.
        b.iadd(t1, Src::Reg(t0), Src::Imm(-h));
        b.and(t1, Src::Reg(t1), Src::Imm(mask));
        emit_pad(b, off_im, t1, padded);
        b.iadd(t1, Src::Reg(t0), Src::Imm(h));
        b.and(t1, Src::Reg(t1), Src::Imm(mask));
        emit_pad(b, off_ip, t1, padded);
        emit_pad(b, off_i, t0, padded);

        // Twelve shared loads: (a, b, c, d) at i, i−h, i+h.
        for (dst, off, arr) in [
            (ai, off_i, 0i32),
            (bi, off_i, 1),
            (ci, off_i, 2),
            (di, off_i, 3),
            (am, off_im, 0),
            (bm, off_im, 1),
            (cm, off_im, 2),
            (dm, off_im, 3),
            (ap, off_ip, 0),
            (bp, off_ip, 1),
            (cp, off_ip, 2),
            (dp, off_ip, 3),
        ] {
            b.ld_shared(dst, MemAddr::new(Some(off), arr * ab), Width::B32);
        }

        // k1 = a_i / b_{i−h},   k2 = c_i / b_{i+h} (negated for FMAD form).
        b.rcp(bm, Src::Reg(bm));
        b.rcp(bp, Src::Reg(bp));
        b.fmul(k1, Src::Reg(ai), Src::Reg(bm));
        b.fmul(k2, Src::Reg(ci), Src::Reg(bp));
        b.fmul(k1, Src::Reg(k1), Src::Reg(m1)); // −k1
        b.fmul(k2, Src::Reg(k2), Src::Reg(m1)); // −k2
                                                // a' = −a_{i−h}·k1, c' = −c_{i+h}·k2 (k already negated).
        b.fmul(am, Src::Reg(am), Src::Reg(k1));
        b.fmul(cp, Src::Reg(cp), Src::Reg(k2));
        // b' = b_i − c_{i−h}·k1 − a_{i+h}·k2.
        b.fmad(bi, Src::Reg(cm), Src::Reg(k1), Src::Reg(bi));
        b.fmad(bi, Src::Reg(ap), Src::Reg(k2), Src::Reg(bi));
        // d' = d_i − d_{i−h}·k1 − d_{i+h}·k2.
        b.fmad(di, Src::Reg(dm), Src::Reg(k1), Src::Reg(di));
        b.fmad(di, Src::Reg(dp), Src::Reg(k2), Src::Reg(di));

        // Stores guarded to the truly active lanes.
        b.setp(
            Pred(0),
            CmpOp::Lt,
            NumTy::S32,
            Src::Reg(tid),
            Src::Imm(active),
        );
        b.set_guard(Pred(0), false);
        b.st_shared(MemAddr::new(Some(off_i), 0), am, Width::B32);
        b.st_shared(MemAddr::new(Some(off_i), ab), bi, Width::B32);
        b.st_shared(MemAddr::new(Some(off_i), 2 * ab), cp, Width::B32);
        b.st_shared(MemAddr::new(Some(off_i), 3 * ab), di, Width::B32);
        b.clear_guard();
        b.label(format!("fwd_skip_{s}"));
        b.bar();
    }

    // ---- Base: solve the last remaining equation (i = n−1) ----
    let base = pad_index(n - 1, padded) as i32 * 4;
    b.setp(Pred(0), CmpOp::Eq, NumTy::S32, Src::Reg(tid), Src::Imm(0));
    b.set_guard(Pred(0), false);
    b.ld_shared(bi, MemAddr::new(None, base + ab), Width::B32);
    b.ld_shared(di, MemAddr::new(None, base + 3 * ab), Width::B32);
    b.rcp(bi, Src::Reg(bi));
    b.fmul(di, Src::Reg(di), Src::Reg(bi));
    b.st_shared(MemAddr::new(None, base + 3 * ab), di, Width::B32);
    b.clear_guard();
    b.bar();

    // ---- Backward substitution: levels s = log2(n) .. 1 ----
    for s in (1..=steps).rev() {
        let h = 1i32 << (s - 1);
        let active = (n >> s) as i32;
        let active_ceil = ((active as u32).div_ceil(32) * 32) as i32;
        b.setp(
            Pred(1),
            CmpOp::Ge,
            NumTy::S32,
            Src::Reg(tid),
            Src::Imm(active_ceil),
        );
        b.bra_if(Pred(1), false, format!("bwd_skip_{s}"));
        // i = (tid << s) + h − 1, wrapped.
        b.shl(t0, Src::Reg(tid), Src::Imm(s as i32));
        b.iadd(t0, Src::Reg(t0), Src::Imm(h - 1));
        b.and(t0, Src::Reg(t0), Src::Imm(mask));
        b.iadd(t1, Src::Reg(t0), Src::Imm(-h));
        b.and(t1, Src::Reg(t1), Src::Imm(mask));
        emit_pad(b, off_im, t1, padded);
        b.iadd(t1, Src::Reg(t0), Src::Imm(h));
        b.and(t1, Src::Reg(t1), Src::Imm(mask));
        emit_pad(b, off_ip, t1, padded);
        emit_pad(b, off_i, t0, padded);

        b.ld_shared(ai, MemAddr::new(Some(off_i), 0), Width::B32);
        b.ld_shared(bi, MemAddr::new(Some(off_i), ab), Width::B32);
        b.ld_shared(ci, MemAddr::new(Some(off_i), 2 * ab), Width::B32);
        b.ld_shared(di, MemAddr::new(Some(off_i), 3 * ab), Width::B32);
        b.ld_shared(dm, MemAddr::new(Some(off_im), 3 * ab), Width::B32); // x_{i−h}
        b.ld_shared(dp, MemAddr::new(Some(off_ip), 3 * ab), Width::B32); // x_{i+h}

        // x = (d − a·x_{i−h} − c·x_{i+h}) / b.
        b.fmul(ai, Src::Reg(ai), Src::Reg(m1));
        b.fmul(ci, Src::Reg(ci), Src::Reg(m1));
        b.fmad(di, Src::Reg(ai), Src::Reg(dm), Src::Reg(di));
        b.fmad(di, Src::Reg(ci), Src::Reg(dp), Src::Reg(di));
        b.rcp(bi, Src::Reg(bi));
        b.fmul(di, Src::Reg(di), Src::Reg(bi));

        b.setp(
            Pred(0),
            CmpOp::Lt,
            NumTy::S32,
            Src::Reg(tid),
            Src::Imm(active),
        );
        b.set_guard(Pred(0), false);
        b.st_shared(MemAddr::new(Some(off_i), 3 * ab), di, Width::B32);
        b.clear_guard();
        b.label(format!("bwd_skip_{s}"));
        b.bar();
    }

    // ---- Write the solution back (coalesced) ----
    for half in 0..2u32 {
        b.iadd(t0, Src::Reg(tid), Src::Imm((half * THREADS) as i32));
        b.shl(goff, Src::Reg(t0), Src::Imm(2));
        b.iadd(goff, Src::Reg(goff), Src::Reg(sysoff));
        emit_pad(b, soff, t0, padded);
        b.ld_shared(v, MemAddr::new(Some(soff), 3 * ab), Width::B32);
        b.ld_param(t1, x_p);
        b.iadd(t1, Src::Reg(t1), Src::Reg(goff));
        b.st_global(MemAddr::new(Some(t1), 0), v, Width::B32);
    }
    b.exit();

    b.declare_resources(resources(n, padded));
    bld.finish()
}

/// Host-side data for one solver run.
#[derive(Debug)]
pub struct TridiagData {
    /// Equations per system.
    pub n: u32,
    /// Number of systems (blocks).
    pub nsys: u32,
    /// Sub-diagonal (`a[0] = 0` per system).
    pub a: Vec<f32>,
    /// Diagonal (diagonally dominant).
    pub b: Vec<f32>,
    /// Super-diagonal (`c[n−1] = 0` per system).
    pub c: Vec<f32>,
    /// Right-hand side.
    pub d: Vec<f32>,
    /// Device addresses of a, b, c, d, x.
    pub dev: [u64; 5],
}

/// Generate `nsys` diagonally-dominant systems and upload them.
pub fn setup(gmem: &mut GlobalMemory, n: u32, nsys: u32, seed: u32) -> TridiagData {
    let total = (n * nsys) as usize;
    let mut state = seed | 1;
    let mut rnd = move || {
        state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        ((state >> 16) & 0xFFFF) as f32 / 65536.0
    };
    let mut a = vec![0.0f32; total];
    let mut bdiag = vec![0.0f32; total];
    let mut c = vec![0.0f32; total];
    let mut d = vec![0.0f32; total];
    for sys in 0..nsys as usize {
        for i in 0..n as usize {
            let idx = sys * n as usize + i;
            a[idx] = if i == 0 { 0.0 } else { rnd() - 0.5 };
            c[idx] = if i == n as usize - 1 {
                0.0
            } else {
                rnd() - 0.5
            };
            bdiag[idx] = 2.5 + rnd(); // dominance: |a| + |c| ≤ 1 < 2.5
            d[idx] = rnd() * 2.0 - 1.0;
        }
    }
    let dev = [
        gmem.alloc_f32(&a),
        gmem.alloc_f32(&bdiag),
        gmem.alloc_f32(&c),
        gmem.alloc_f32(&d),
        gmem.alloc(u64::from(n) * u64::from(nsys) * 4, 128),
    ];
    TridiagData {
        n,
        nsys,
        a,
        b: bdiag,
        c,
        d,
        dev,
    }
}

/// CPU reference: the Thomas algorithm, per system.
pub fn thomas(n: usize, a: &[f32], b: &[f32], c: &[f32], d: &[f32]) -> Vec<f32> {
    let mut cp = vec![0.0f64; n];
    let mut dp = vec![0.0f64; n];
    cp[0] = f64::from(c[0]) / f64::from(b[0]);
    dp[0] = f64::from(d[0]) / f64::from(b[0]);
    for i in 1..n {
        let m = f64::from(b[i]) - f64::from(a[i]) * cp[i - 1];
        cp[i] = f64::from(c[i]) / m;
        dp[i] = (f64::from(d[i]) - f64::from(a[i]) * dp[i - 1]) / m;
    }
    let mut x = vec![0.0f32; n];
    x[n - 1] = dp[n - 1] as f32;
    for i in (0..n - 1).rev() {
        x[i] = (dp[i] - cp[i] * f64::from(x[i + 1])) as f32;
    }
    x
}

/// Prepare the cyclic-reduction case study (CR, or CR-NBC when
/// `padded`): kernel, device image, regions, and the Thomas-algorithm
/// oracle.
///
/// # Panics
///
/// Panics on unsupported `n` (see [`kernel`]); the `gpa-service` request
/// path validates before calling.
pub fn case(n: u32, nsys: u32, padded: bool) -> CaseStudy {
    let k = kernel(n, padded).expect("CR kernel builds");
    let mut gmem = GlobalMemory::new();
    let data = setup(&mut gmem, n, nsys, 0xBEEF);
    let launch = LaunchConfig::new_1d(nsys, THREADS);
    let params: Vec<u32> = data.dev.iter().map(|d| *d as u32).collect();
    let bytes = u64::from(n) * u64::from(nsys) * 4;
    let regions = vec![
        Region::new("system", data.dev[0], 4 * bytes),
        Region::new("solution", data.dev[4], bytes),
    ];
    let label = format!("{} n={n} nsys={nsys}", if padded { "cr_nbc" } else { "cr" });
    let verify = move |gmem: &GlobalMemory| {
        let ns = n as usize;
        for sys in 0..nsys as usize {
            let got = gmem
                .read_f32s(data.dev[4] + (sys * ns * 4) as u64, ns)
                .map_err(|e| format!("solution unreadable: {e:?}"))?;
            let s = sys * ns;
            let want = thomas(
                ns,
                &data.a[s..s + ns],
                &data.b[s..s + ns],
                &data.c[s..s + ns],
                &data.d[s..s + ns],
            );
            for i in 0..ns {
                // Negated so a NaN result fails verification too.
                let ok = (got[i] - want[i]).abs() <= 2e-3 * want[i].abs().max(1.0);
                if !ok {
                    return Err(format!(
                        "system {sys}, x[{i}] = {}, reference {} (padded={padded})",
                        got[i], want[i]
                    ));
                }
            }
        }
        Ok(())
    };
    CaseStudy::new(
        label,
        k,
        launch,
        params,
        gmem,
        regions,
        TraceMode::Homogeneous,
        0, // the paper reports times, not GFLOPS, for CR
        Some(Box::new(verify)),
    )
}

/// Run the workflow for CR (`padded = false`) or CR-NBC (`padded = true`)
/// on a single thread (the deterministic baseline).
///
/// # Errors
///
/// Propagates simulation and extraction errors.
///
/// # Panics
///
/// Panics if verification fails.
pub fn run(
    machine: &Machine,
    model: &mut Model<'_>,
    n: u32,
    nsys: u32,
    padded: bool,
    verify: bool,
) -> Result<CaseRun, CaseError> {
    run_with_threads(machine, model, n, nsys, padded, verify, 1)
}

/// Like [`run`], with block execution sharded across `threads` worker
/// threads (plain counts convert: `0` = auto). Results are bit-identical
/// to [`run`].
///
/// # Errors
///
/// Propagates simulation and extraction errors.
///
/// # Panics
///
/// Panics if verification fails.
pub fn run_with_threads(
    machine: &Machine,
    model: &mut Model<'_>,
    n: u32,
    nsys: u32,
    padded: bool,
    verify: bool,
    threads: impl Into<Threads>,
) -> Result<CaseRun, CaseError> {
    let mut study = case(n, nsys, padded);
    let run = run_study(machine, model, &mut study, threads.into(), None)?;
    if verify {
        study.check().unwrap_or_else(|e| panic!("{e}"));
    }
    Ok(run)
}

/// Index of the first forward-reduction stage in the per-stage analysis
/// (stage 0 is the global load).
pub const FIRST_FORWARD_STAGE: usize = 1;

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_core::Component;
    use gpa_ubench::{MeasureOpts, ThroughputCurves};
    use std::sync::OnceLock;

    fn machine() -> &'static Machine {
        static M: OnceLock<Machine> = OnceLock::new();
        M.get_or_init(Machine::gtx285)
    }

    fn model() -> Model<'static> {
        static C: OnceLock<ThroughputCurves> = OnceLock::new();
        let curves =
            C.get_or_init(|| ThroughputCurves::measure_with(machine(), MeasureOpts::quick()));
        Model::new(machine(), curves.clone())
    }

    #[test]
    fn cr_solves_systems() {
        let mut m = model();
        run(machine(), &mut m, 512, 4, false, true).unwrap();
    }

    #[test]
    fn cr_nbc_solves_systems() {
        let mut m = model();
        run(machine(), &mut m, 512, 4, true, true).unwrap();
    }

    #[test]
    fn one_resident_block_serializes_stages() {
        let mut m = model();
        let r = run(machine(), &mut m, 512, 30, false, false).unwrap();
        assert_eq!(r.input.occupancy.blocks, 1);
        // load + 9 forward + base + 9 backward + writeback = 21 stages.
        assert_eq!(r.input.stats.stages.len(), 21);
        assert_eq!(r.analysis.predicted_seconds, r.analysis.serialized_seconds);
    }

    #[test]
    fn conflicts_double_each_forward_step_until_the_cap() {
        // Paper Figure 5/7b: 2-way, 4-way, 8-way, 16-way.
        let mut m = model();
        let r = run(machine(), &mut m, 512, 8, false, false).unwrap();
        let stages = &r.input.stats.stages;
        for (k, expect) in [(0usize, 2.0), (1, 4.0), (2, 8.0), (3, 16.0), (4, 16.0)] {
            let f = stages[FIRST_FORWARD_STAGE + k].bank_conflict_factor();
            assert!(
                (f - expect).abs() / expect < 0.35,
                "forward step {}: conflict factor {f:.2}, expected {expect}",
                k + 1
            );
        }
    }

    #[test]
    fn padding_removes_conflicts() {
        // Paper §5.2: CR-NBC eliminates the conflicts (a small residual
        // remains past stride 16 — see gpa-mem's padding tests).
        let mut m = model();
        let r = run(machine(), &mut m, 512, 8, true, false).unwrap();
        let stages = &r.input.stats.stages;
        for k in 0..4 {
            let f = stages[FIRST_FORWARD_STAGE + k].bank_conflict_factor();
            assert!(f < 1.4, "forward step {}: conflict factor {f:.2}", k + 1);
        }
        let total = r.analysis.bank_conflict_factor;
        assert!(total < 1.5, "overall factor {total:.2}");
    }

    #[test]
    fn transactions_stay_flat_for_cr_but_halve_without_conflicts() {
        // Paper Figure 7b: with conflicts the per-step transaction count
        // stays ~constant over the first steps; the conflict-free
        // equivalent halves.
        let mut m = model();
        let cr = run(machine(), &mut m, 512, 8, false, false).unwrap();
        let s = &cr.input.stats.stages;
        let t1 = s[FIRST_FORWARD_STAGE].smem_warp_equiv();
        let t3 = s[FIRST_FORWARD_STAGE + 2].smem_warp_equiv();
        assert!(
            (t3 / t1 - 1.0).abs() < 0.3,
            "CR step 3 / step 1 transaction ratio {:.2} should be ~1",
            t3 / t1
        );
        let nc1 = s[FIRST_FORWARD_STAGE].smem_warp_equiv_no_conflicts();
        let nc3 = s[FIRST_FORWARD_STAGE + 2].smem_warp_equiv_no_conflicts();
        assert!(
            (nc3 / nc1 - 0.25).abs() < 0.15,
            "conflict-free step 3 / step 1 ratio {:.2} should be ~0.25",
            nc3 / nc1
        );
    }

    #[test]
    fn cr_is_shared_memory_bound_and_nbc_is_not() {
        let mut m = model();
        let cr = run(machine(), &mut m, 512, 30, false, false).unwrap();
        assert_eq!(cr.analysis.bottleneck, Component::SharedMemory);
        let nbc = run(machine(), &mut m, 512, 30, true, false).unwrap();
        assert_eq!(nbc.analysis.bottleneck, Component::InstructionPipeline);
    }

    #[test]
    fn padding_speeds_up_measurably() {
        // Paper Figure 8: ≈1.6×.
        let mut m = model();
        let cr = run(machine(), &mut m, 512, 30, false, false).unwrap();
        let nbc = run(machine(), &mut m, 512, 30, true, false).unwrap();
        let speedup = cr.measured_seconds() / nbc.measured_seconds();
        assert!(
            (1.25..2.2).contains(&speedup),
            "CR-NBC speedup ×{speedup:.2} (CR {:.3e}s, NBC {:.3e}s)",
            cr.measured_seconds(),
            nbc.measured_seconds()
        );
    }

    #[test]
    fn what_if_predicts_the_padding_benefit() {
        // The paper's §5.2 workflow: the model prices the removal of bank
        // conflicts *before* implementing CR-NBC, then verifies.
        let mut m = model();
        let cr = run(machine(), &mut m, 512, 30, false, false).unwrap();
        let nbc = run(machine(), &mut m, 512, 30, true, false).unwrap();
        let what_if = m.what_if_no_bank_conflicts(&cr.input);
        let actual = cr.measured_seconds() / nbc.measured_seconds();
        // The model overestimates the gain (the real CR-NBC is
        // latency-bound in its one-warp steps, which a pure throughput
        // model cannot see — the paper lists "model situations of
        // non-perfect overlap" as its own future work). The paper's
        // prediction ran high too (×1.83 model vs ×1.62 achieved).
        // Require the right direction and a bounded overshoot.
        assert!(
            what_if.speedup > 1.2 && what_if.speedup / actual < 2.0,
            "predicted ×{:.2}, actual ×{actual:.2}",
            what_if.speedup
        );
    }

    #[test]
    fn model_error_within_band() {
        // Paper Figure 8: measured and simulated agree within 7%; allow a
        // wider band for our reproduction.
        let mut m = model();
        for padded in [false, true] {
            let r = run(machine(), &mut m, 512, 30, padded, false).unwrap();
            let err = r.model_error().abs();
            assert!(
                err < 0.30,
                "padded={padded}: predicted {:.3e}, measured {:.3e} ({:.0}%)",
                r.predicted_seconds(),
                r.measured_seconds(),
                err * 100.0
            );
        }
    }

    #[test]
    fn stage_zero_is_global_memory_bound() {
        // Paper Figure 6a: step 0 (the system load) is global-bound.
        let mut m = model();
        let r = run(machine(), &mut m, 512, 30, false, false).unwrap();
        assert_eq!(r.analysis.stages[0].bottleneck, Component::GlobalMemory);
    }
}
