//! Timing-replay benchmarks: the sequential cluster walk against the
//! sharded parallel walk, on an identical per-block workload. The two
//! must produce bit-identical [`gpa_sim::TimingResult`]s (asserted here
//! once, property-tested in `tests/timing_equivalence.rs`); only
//! wall-clock may differ, and on a multi-core runner `sim/timing_par`
//! should beat `sim/timing_seq`.

use criterion::{criterion_group, criterion_main, Criterion};
use gpa_hw::{InstrClass, KernelResources, Machine};
use gpa_mem::coalesce::Transaction;
use gpa_sim::stats::{BlockTrace, DstLatency, TraceEntry};
use gpa_sim::{LaunchConfig, Threads, TimingSim, TraceSource};
use std::hint::black_box;
use std::sync::Arc;

/// One warp of a matmul-shaped inner loop: shared-memory loads feeding
/// FMA-class arithmetic with RAW dependences, a coalesced global access
/// per iteration, and a barrier between iterations.
fn warp_stream(iters: usize, salt: u64) -> Vec<TraceEntry> {
    let mut out = Vec::new();
    let e = |class: InstrClass| TraceEntry {
        class,
        dst: 0,
        dst_n: 0,
        srcs: [0xFF; 8],
        nsrcs: 0,
        dst_lat: DstLatency::Alu,
        smem_half_txns: 0,
        gmem: None,
        gmem_load: false,
        bar: false,
    };
    for i in 0..iters {
        for j in 0..16u8 {
            let mut ld = e(InstrClass::TypeII);
            ld.dst = j % 8;
            ld.dst_n = 1;
            ld.dst_lat = DstLatency::Smem;
            ld.smem_half_txns = if j % 5 == 0 { 4 } else { 2 };
            out.push(ld);
            let mut fma = e(InstrClass::TypeII);
            fma.dst = 8 + j % 4;
            fma.dst_n = 1;
            fma.srcs[0] = j % 8;
            fma.srcs[1] = 8 + j % 4;
            fma.nsrcs = 2;
            out.push(fma);
        }
        let mut gld = e(InstrClass::TypeII);
        gld.dst = 12;
        gld.dst_n = 1;
        gld.dst_lat = DstLatency::Gmem;
        gld.gmem_load = true;
        gld.gmem = Some(
            vec![Transaction {
                base: 4096 + ((salt + i as u64) % 512) * 128,
                size: 128,
            }]
            .into_boxed_slice(),
        );
        out.push(gld);
        let mut bar = e(InstrClass::TypeII);
        bar.bar = true;
        out.push(bar);
    }
    out
}

fn workload() -> (Vec<Arc<BlockTrace>>, LaunchConfig, KernelResources) {
    // 40 blocks over GTX 285's 10 clusters, 4 warps each: every cluster
    // replays 4 blocks of ~2.7k warp-instructions.
    let blocks: Vec<Arc<BlockTrace>> = (0..40u64)
        .map(|b| {
            Arc::new(BlockTrace {
                warps: (0..4).map(|w| warp_stream(40, b * 7 + w)).collect(),
            })
        })
        .collect();
    (
        blocks,
        LaunchConfig::new_1d(40, 128),
        KernelResources::new(16, 2048, 128),
    )
}

fn bench_timing(c: &mut Criterion) {
    let machine = Machine::gtx285();
    let (blocks, launch, res) = workload();

    let run = |threads: Threads| {
        let mut sim = TimingSim::new(&machine);
        sim.set_threads(threads);
        let mut src = TraceSource::PerBlock(blocks.clone());
        sim.run(&mut src, &launch, res)
    };
    assert_eq!(
        run(Threads::sequential()),
        run(Threads::Auto),
        "parallel replay must be bit-identical to sequential"
    );

    c.bench_function("sim/timing_seq", |b| {
        b.iter(|| black_box(run(Threads::sequential())))
    });
    c.bench_function("sim/timing_par", |b| {
        b.iter(|| black_box(run(Threads::Auto)))
    });
}

criterion_group!(benches, bench_timing);
criterion_main!(benches);
