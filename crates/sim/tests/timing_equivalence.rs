//! Acceptance property for the parallel timing replay: for random kernels
//! (random per-block traces — mixed instruction classes, register
//! dependences, shared-memory transactions with bank-conflict replays,
//! coalesced global transactions, barriers) across machines and thread
//! counts, the sharded replay's [`TimingResult`] is **bit-identical** to
//! the sequential walk — cycles, the per-cluster vector, and every
//! counter. Clusters are independent and outcomes merge in cluster-id
//! order, so thread count must never leak into the answer.

use gpa_hw::{InstrClass, KernelResources, Machine};
use gpa_mem::coalesce::Transaction;
use gpa_sim::stats::{BlockTrace, DstLatency, TraceEntry};
use gpa_sim::{LaunchConfig, Threads, TimingSim, TraceSource};
use proptest::prelude::*;
use std::sync::Arc;

/// SplitMix64: a tiny deterministic generator so one proptest-drawn seed
/// expands into a whole grid of block traces.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_entry(rng: &mut u64) -> TraceEntry {
    let r = mix(rng);
    let class = InstrClass::ALL[(r % 4) as usize];
    let dst = ((r >> 2) % 16) as u8;
    let dst_n = if (r >> 6).is_multiple_of(3) { 0 } else { 1 };
    let nsrcs = ((r >> 8) % 4) as u8;
    let mut srcs = [0xFF; 8];
    for slot in srcs.iter_mut().take(usize::from(nsrcs)) {
        *slot = (mix(rng) % 16) as u8;
    }
    let smem_half_txns = match (r >> 12) % 5 {
        0 | 1 => 0,
        2 => 2,
        3 => 3,
        _ => 6,
    };
    let (gmem, gmem_load) = if (r >> 16).is_multiple_of(4) {
        let ntx = 1 + (mix(rng) % 2) as usize;
        let txs: Vec<Transaction> = (0..ntx)
            .map(|_| Transaction {
                base: 4096 + (mix(rng) % 512) * 64,
                size: [32u32, 64, 128][(mix(rng) % 3) as usize],
            })
            .collect();
        (Some(txs.into_boxed_slice()), mix(rng).is_multiple_of(2))
    } else {
        (None, false)
    };
    let dst_lat = if gmem_load {
        DstLatency::Gmem
    } else if smem_half_txns > 0 {
        DstLatency::Smem
    } else {
        DstLatency::Alu
    };
    TraceEntry {
        class,
        dst,
        dst_n,
        srcs,
        nsrcs,
        dst_lat,
        smem_half_txns,
        gmem,
        gmem_load,
        bar: false,
    }
}

/// A deadlock-free random block: every warp runs the same number of
/// barrier-separated phases (warps that exit early stop participating in
/// barriers, matching GT200 semantics, but keeping the phase count equal
/// per block avoids degenerate all-waiting states).
fn random_block(rng: &mut u64, nwarps: usize, phases: usize) -> BlockTrace {
    let mut warps: Vec<Vec<TraceEntry>> = vec![Vec::new(); nwarps];
    for phase in 0..phases {
        for w in warps.iter_mut() {
            let len = 1 + (mix(rng) % 10) as usize;
            for _ in 0..len {
                w.push(random_entry(rng));
            }
            if phase + 1 < phases {
                let mut bar = random_entry(rng);
                bar.bar = true;
                bar.gmem = None;
                bar.gmem_load = false;
                bar.dst_lat = DstLatency::Alu;
                w.push(bar);
            }
        }
    }
    BlockTrace { warps }
}

fn machines() -> [Machine; 3] {
    [
        Machine::gtx285(),
        Machine::geforce_8800gt(),
        Machine::geforce_9800gtx(),
    ]
}

const THREAD_GRID: [Threads; 4] = [
    Threads::Fixed(2),
    Threads::Fixed(3),
    Threads::Fixed(7),
    Threads::Auto,
];

proptest! {
    /// Per-block traces (the worst case for sharding: every block
    /// distinct): every thread count reproduces the sequential result
    /// bit for bit on every machine.
    #[test]
    fn parallel_per_block_replay_is_bit_identical(
        seed in 0u64..u64::MAX / 2,
        nblocks in 1u32..24,
        nwarps in 1usize..4,
        phases in 1usize..4,
    ) {
        let mut rng = seed;
        let traces: Vec<Arc<BlockTrace>> = (0..nblocks)
            .map(|_| Arc::new(random_block(&mut rng, nwarps, phases)))
            .collect();
        for m in machines() {
            let res = KernelResources::new(8, 0, 32 * nwarps as u32);
            let launch = LaunchConfig::new_1d(nblocks, 32 * nwarps as u32);
            let reference = {
                let mut sim = TimingSim::new(&m);
                sim.set_threads(Threads::sequential());
                sim.run(&mut TraceSource::PerBlock(traces.clone()), &launch, res)
            };
            for threads in THREAD_GRID {
                let mut sim = TimingSim::new(&m);
                sim.set_threads(threads);
                let got = sim.run(&mut TraceSource::PerBlock(traces.clone()), &launch, res);
                prop_assert_eq!(
                    got.cycles.to_bits(),
                    reference.cycles.to_bits(),
                    "cycles diverge on {} with {:?}", m.name, threads
                );
                prop_assert_eq!(&got, &reference, "{} with {:?}", m.name, threads);
            }
        }
    }

    /// Homogeneous sources shard the same way; the uniform-cluster fast
    /// path must also be insensitive to the thread knob (it replays one
    /// cluster, so parallel and sequential collapse to the same walk).
    #[test]
    fn homogeneous_and_uniform_replay_are_bit_identical(
        seed in 0u64..u64::MAX / 2,
        nblocks in 1u32..40,
        nwarps in 1usize..4,
    ) {
        let mut rng = seed;
        let trace = Arc::new(random_block(&mut rng, nwarps, 2));
        let m = Machine::gtx285();
        let res = KernelResources::new(8, 0, 32 * nwarps as u32);
        let launch = LaunchConfig::new_1d(nblocks, 32 * nwarps as u32);
        for uniform in [false, true] {
            let reference = {
                let mut sim = TimingSim::new(&m);
                sim.assume_uniform_clusters(uniform);
                sim.set_threads(Threads::sequential());
                sim.run(&mut TraceSource::Homogeneous(Arc::clone(&trace)), &launch, res)
            };
            for threads in THREAD_GRID {
                let mut sim = TimingSim::new(&m);
                sim.assume_uniform_clusters(uniform);
                sim.set_threads(threads);
                let got =
                    sim.run(&mut TraceSource::Homogeneous(Arc::clone(&trace)), &launch, res);
                prop_assert_eq!(&got, &reference, "uniform={} {:?}", uniform, threads);
            }
        }
    }

    /// A lazy (stateful) source under a parallel thread selection must
    /// fall back to one worker and still match — and keep fetching each
    /// block exactly once.
    #[test]
    fn lazy_source_falls_back_to_sequential(
        seed in 0u64..u64::MAX / 2,
        nblocks in 1u32..16,
    ) {
        let mut rng = seed;
        let traces: Vec<Arc<BlockTrace>> = (0..nblocks)
            .map(|_| Arc::new(random_block(&mut rng, 2, 2)))
            .collect();
        let m = Machine::gtx285();
        let res = KernelResources::new(8, 0, 64);
        let launch = LaunchConfig::new_1d(nblocks, 64);
        let reference = {
            let mut sim = TimingSim::new(&m);
            sim.set_threads(Threads::sequential());
            sim.run(&mut TraceSource::PerBlock(traces.clone()), &launch, res)
        };
        let mut calls = 0u32;
        let got = {
            let mut src = TraceSource::Lazy(Box::new(|b| {
                calls += 1;
                Arc::clone(&traces[b as usize])
            }));
            let mut sim = TimingSim::new(&m);
            sim.set_threads(Threads::Auto);
            sim.run(&mut src, &launch, res)
        };
        prop_assert_eq!(calls, nblocks);
        prop_assert_eq!(&got, &reference);
    }
}
