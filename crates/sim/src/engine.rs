//! The parallel block-sharded execution engine.
//!
//! Block execution in a grid launch is embarrassingly parallel: blocks of
//! one launch may not communicate through global memory (real CUDA offers
//! no global barrier), so the functional simulator can execute disjoint
//! block ranges on separate OS threads and still produce output that is
//! **bit-identical** to the sequential walk. [`SimEngine`] is that layer.
//!
//! # Sharding/merge contract
//!
//! * The grid's blocks `0..n` are split into at most `num_threads`
//!   **contiguous shards** of near-equal size ([`SimEngine::shard_plan`]),
//!   one [`std::thread`] scoped worker per shard — no work stealing, so
//!   the assignment is deterministic.
//! * Each worker gets a **private copy** of the initial [`GlobalMemory`]
//!   with write capture enabled
//!   ([`GlobalMemory::begin_write_capture`]), a fresh [`DynamicStats`]
//!   accumulator, and its own fuel budget, and executes its shard's
//!   blocks sequentially in block-id order.
//! * Results merge **in shard (= block-id) order**: per-stage statistics
//!   via [`crate::stats::StageStats::merge_blocks`] (all counters are
//!   additive across disjoint block sets), per-region traffic summed,
//!   traces concatenated, and the captured global-memory write logs
//!   replayed into the caller's memory
//!   ([`GlobalMemory::apply_writes`]). Replaying in block-id order makes
//!   even racy cross-block overwrites resolve exactly as the sequential
//!   walk would.
//! * Errors are deterministic too: the error reported is the one from the
//!   lowest-numbered failing shard, which (for independent blocks) is the
//!   same lowest-block-id error the sequential walk raises. Shards
//!   *above* a failing one abort between blocks (their results could
//!   never be observed); shards below always run to completion, because
//!   one of them may still fail earlier and become the authoritative
//!   error. When execution was actually sharded (two or more workers and
//!   blocks), an error leaves the caller's memory untouched; the
//!   sequential fallback (one worker, or a single-block grid) keeps the
//!   classic walk's behaviour of leaving already-executed writes in
//!   place.
//!
//! The only observable divergence from the sequential path is the fuel
//! accounting: a sequential run spends one budget across the whole grid,
//! a parallel run one budget per shard, so a grid that exhausts fuel
//! sequentially may complete in parallel (never the reverse for
//! per-block-affordable kernels). This is deliberate: fuel is a
//! runaway-loop guard, not a metered resource, and the deterministic
//! alternative — splitting one budget across shards up front — would
//! make parallel runs fail where sequential ones succeed. Layers that
//! expose a fuel knob (`CaseOpts::fuel` in `gpa-apps`,
//! `AnalysisOptions::fuel` in `gpa-service`) document the same
//! per-shard semantics.

use crate::error::SimError;
use crate::func::{FunctionalSim, RunOutput};
use crate::memory::{GlobalMemory, WriteRecord};
use crate::stats::{BlockTrace, DynamicStats};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-thread selection, the one threading knob shared by every layer
/// that shards independent work: block execution ([`SimEngine`],
/// `CaseOpts` in `gpa-apps`), curve calibration (`MeasureOpts` in
/// `gpa-ubench`), and batch analysis (`AnalysisOptions` in `gpa-service`).
///
/// Sharded results are **bit-identical at every thread count** throughout
/// the workspace, so the options layers default to [`Threads::Auto`]; pick
/// [`Threads::sequential`] only when wall-clock determinism or single-core
/// profiling matters. (The exception is fuel accounting: a parallel run
/// budgets fuel per shard — see the [module docs](crate::engine).)
///
/// The legacy `usize` encoding (`0` = auto, `n` = exactly `n` workers)
/// converts via `From`, so call sites may pass plain counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Threads {
    /// One worker per available CPU core.
    #[default]
    Auto,
    /// Exactly `n` workers; `Fixed(1)` is the sequential special case.
    Fixed(usize),
}

impl Threads {
    /// The sequential special case (`Fixed(1)`).
    pub fn sequential() -> Threads {
        Threads::Fixed(1)
    }

    /// Resolved worker count (≥ 1): `Auto` asks the OS for the number of
    /// available CPU cores, `Fixed(0)` is normalized to one worker.
    pub fn count(self) -> usize {
        match self {
            Threads::Auto => std::thread::available_parallelism().map_or(1, |p| p.get()),
            Threads::Fixed(n) => n.max(1),
        }
    }

    /// The legacy `usize` encoding: `0` = auto, `n` = exactly `n` workers.
    pub fn raw(self) -> usize {
        match self {
            Threads::Auto => 0,
            Threads::Fixed(n) => n,
        }
    }
}

impl From<usize> for Threads {
    /// Legacy encoding: `0` = auto, `n` = exactly `n` workers.
    fn from(n: usize) -> Threads {
        if n == 0 {
            Threads::Auto
        } else {
            Threads::Fixed(n)
        }
    }
}

/// Executes a [`FunctionalSim`]'s grid across worker threads.
///
/// Construct with an explicit thread count ([`SimEngine::new`]) or one
/// worker per available CPU core ([`SimEngine::auto`]). The engine is
/// cheap to build; all simulation state lives in the `FunctionalSim` and
/// the per-run shard workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimEngine {
    num_threads: usize,
}

/// What one shard worker produces: its statistics, its (optional) traces
/// in block order, and the global-memory writes its blocks performed.
struct ShardOutput {
    stats: DynamicStats,
    traces: Option<Vec<BlockTrace>>,
    writes: Vec<WriteRecord>,
}

impl SimEngine {
    /// An engine with `num_threads` workers. `0` means "auto" (one worker
    /// per available CPU core); `1` is the sequential special case.
    pub fn new(num_threads: usize) -> SimEngine {
        let n = if num_threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            num_threads
        };
        SimEngine { num_threads: n }
    }

    /// One worker per available CPU core.
    pub fn auto() -> SimEngine {
        SimEngine::new(0)
    }

    /// An engine from a [`Threads`] selection.
    pub fn with_threads(threads: Threads) -> SimEngine {
        SimEngine {
            num_threads: threads.count(),
        }
    }

    /// Resolved worker count (≥ 1).
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Split `num_blocks` blocks into at most `num_threads` contiguous,
    /// non-empty, near-equal shards covering `0..num_blocks` in order.
    pub fn shard_plan(num_blocks: u32, num_threads: usize) -> Vec<Range<u32>> {
        let shards = (num_threads.max(1) as u32).min(num_blocks);
        let mut plan = Vec::with_capacity(shards as usize);
        let mut start = 0u32;
        for s in 0..shards {
            // Distribute the remainder over the leading shards.
            let len = num_blocks / shards + u32::from(s < num_blocks % shards);
            plan.push(start..start + len);
            start += len;
        }
        plan
    }

    /// Execute every block of `sim`'s grid against `gmem`, sharded across
    /// this engine's workers, and return output bit-identical to the
    /// sequential path (see the [module docs](crate::engine) for the
    /// contract and the fuel caveat).
    ///
    /// # Errors
    ///
    /// Propagates the lowest-block-id [`SimError`]. When execution was
    /// actually sharded (≥ 2 workers and ≥ 2 blocks), `gmem` is unchanged
    /// on error; the sequential fallback leaves already-executed writes
    /// in place, exactly like the classic walk.
    pub fn run(
        &self,
        sim: &FunctionalSim<'_>,
        gmem: &mut GlobalMemory,
    ) -> Result<RunOutput, SimError> {
        let num_blocks = sim.launch().num_blocks();
        if self.num_threads <= 1 || num_blocks <= 1 {
            return Self::run_sequential(sim, gmem);
        }

        let plan = Self::shard_plan(num_blocks, self.num_threads);
        // Fail-fast coordination: a failing shard publishes its index so
        // *higher* shards stop wasting work between blocks. Lower shards
        // always run to completion — they must, because the authoritative
        // error is the one from the lowest failing shard (sequential
        // semantics), and a lower shard may still fail earlier.
        let lowest_failed = AtomicUsize::new(usize::MAX);
        let shard_results: Vec<Option<Result<ShardOutput, SimError>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = plan
                    .iter()
                    .enumerate()
                    .map(|(idx, range)| {
                        let mut shard_mem = gmem.clone();
                        let range = range.clone();
                        let failed = &lowest_failed;
                        scope.spawn(move || {
                            let out = Self::run_shard(sim, &mut shard_mem, range, idx, failed);
                            if matches!(out, Some(Err(_))) {
                                failed.fetch_min(idx, Ordering::Relaxed);
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("simulation worker panicked"))
                    .collect()
            });

        // Deterministic merge in shard (= block-id) order.
        let mut stats = sim.fresh_stats();
        let mut traces = sim.is_collecting_traces().then(Vec::new);
        let mut writes: Vec<WriteRecord> = Vec::new();
        for result in shard_results {
            // An aborted shard (`None`) only exists above a failing one,
            // so the `?` below always returns before reaching it.
            let shard = result.expect("shard aborted with no lower-shard failure")?;
            stats.merge_shard(&shard.stats);
            if let (Some(all), Some(mut t)) = (traces.as_mut(), shard.traces) {
                all.append(&mut t);
            }
            writes.extend(shard.writes);
        }
        gmem.apply_writes(&writes)
            .expect("captured writes replay into the memory they came from");
        stats.blocks = u64::from(num_blocks);
        Ok(RunOutput { stats, traces })
    }

    /// The `num_threads == 1` special case: the classic sequential walk,
    /// with one fuel budget shared across the whole grid.
    fn run_sequential(
        sim: &FunctionalSim<'_>,
        gmem: &mut GlobalMemory,
    ) -> Result<RunOutput, SimError> {
        let mut stats = sim.fresh_stats();
        let mut traces = sim.is_collecting_traces().then(Vec::new);
        let mut fuel = sim.fuel_budget();
        for b in 0..sim.launch().num_blocks() {
            let trace = sim.exec_block(gmem, b, &mut stats, &mut fuel)?;
            if let (Some(ts), Some(t)) = (traces.as_mut(), trace) {
                ts.push(t);
            }
        }
        stats.blocks = u64::from(sim.launch().num_blocks());
        Ok(RunOutput { stats, traces })
    }

    /// Run one shard's blocks sequentially against its private memory.
    /// Returns `None` when aborted because a lower-indexed shard failed
    /// (this shard's result could never be observed).
    fn run_shard(
        sim: &FunctionalSim<'_>,
        shard_mem: &mut GlobalMemory,
        range: Range<u32>,
        shard_idx: usize,
        lowest_failed: &AtomicUsize,
    ) -> Option<Result<ShardOutput, SimError>> {
        shard_mem.begin_write_capture();
        let mut stats = sim.fresh_stats();
        let mut traces = sim.is_collecting_traces().then(Vec::new);
        let mut fuel = sim.fuel_budget();
        for b in range {
            if lowest_failed.load(Ordering::Relaxed) < shard_idx {
                return None;
            }
            match sim.exec_block(shard_mem, b, &mut stats, &mut fuel) {
                Ok(trace) => {
                    if let (Some(ts), Some(t)) = (traces.as_mut(), trace) {
                        ts.push(t);
                    }
                }
                Err(e) => return Some(Err(e)),
            }
        }
        stats.blocks = 0; // the merge sets the grid total
        Some(Ok(ShardOutput {
            stats,
            traces,
            writes: shard_mem.take_captured_writes(),
        }))
    }
}

impl Default for SimEngine {
    fn default() -> Self {
        SimEngine::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::LaunchConfig;
    use gpa_hw::Machine;
    use gpa_isa::builder::KernelBuilder;
    use gpa_isa::instr::{MemAddr, SpecialReg, Src, Width};
    use gpa_isa::Kernel;

    /// out[global_tid] = ctaid * 3 + tid, with a shared-memory staging
    /// round (store, barrier, load the neighbour's slot) so the kernel
    /// exercises stages, smem traffic, and gmem writes.
    fn staged_kernel(threads: u32) -> Kernel {
        let mut b = KernelBuilder::new("engine_test");
        b.set_threads(threads);
        let smem = b.smem_alloc(threads * 4, 4).unwrap();
        let tid = b.alloc_reg().unwrap();
        let cta = b.alloc_reg().unwrap();
        let v = b.alloc_reg().unwrap();
        let addr = b.alloc_reg().unwrap();
        let base = b.alloc_reg().unwrap();
        let ntid = b.alloc_reg().unwrap();
        let p = b.param_alloc();
        b.s2r(tid, SpecialReg::TidX);
        b.s2r(cta, SpecialReg::CtaIdX);
        b.s2r(ntid, SpecialReg::NTidX);
        b.imad(v, Src::Reg(cta), Src::Imm(3), Src::Reg(tid));
        // smem[tid] = v; bar; v = smem[tid]
        b.shl(addr, Src::Reg(tid), Src::Imm(2));
        b.iadd(addr, Src::Reg(addr), Src::Imm(smem as i32));
        b.st_shared(MemAddr::new(Some(addr), 0), v, Width::B32);
        b.bar();
        b.ld_shared(v, MemAddr::new(Some(addr), 0), Width::B32);
        // out[cta * ntid + tid] = v
        b.imad(base, Src::Reg(cta), Src::Reg(ntid), Src::Reg(tid));
        b.shl(base, Src::Reg(base), Src::Imm(2));
        b.ld_param(addr, p);
        b.iadd(base, Src::Reg(base), Src::Reg(addr));
        b.st_global(MemAddr::new(Some(base), 0), v, Width::B32);
        b.exit();
        b.finish().unwrap()
    }

    fn run_with_threads(threads: usize, trace: bool) -> (RunOutput, GlobalMemory) {
        let m = Machine::gtx285();
        let k = staged_kernel(64);
        let launch = LaunchConfig::new_1d(37, 64);
        let mut gmem = GlobalMemory::new();
        let out = gmem.alloc(u64::from(37u32 * 64) * 4, 128);
        let mut sim = FunctionalSim::new(&m, &k, launch).unwrap();
        sim.set_params(&[out as u32])
            .collect_traces(trace)
            .set_num_threads(threads);
        sim.add_region("out", out, u64::from(37u32 * 64) * 4);
        let output = sim.run(&mut gmem).unwrap();
        (output, gmem)
    }

    #[test]
    fn shard_plan_covers_grid_contiguously() {
        for blocks in [1u32, 2, 3, 7, 8, 61, 1000] {
            for threads in [1usize, 2, 3, 4, 13, 64] {
                let plan = SimEngine::shard_plan(blocks, threads);
                assert!(plan.len() <= threads);
                assert!(plan.len() as u32 <= blocks);
                let mut next = 0u32;
                for r in &plan {
                    assert_eq!(r.start, next, "gap at {r:?} ({blocks}b/{threads}t)");
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, blocks);
                let sizes: Vec<u32> = plan.iter().map(|r| r.end - r.start).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced plan {sizes:?}");
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let (seq, seq_mem) = run_with_threads(1, true);
        for threads in [2usize, 3, 4, 0] {
            let (par, par_mem) = run_with_threads(threads, true);
            assert_eq!(seq.stats, par.stats, "stats diverge at {threads} threads");
            assert_eq!(
                seq.traces, par.traces,
                "traces diverge at {threads} threads"
            );
            assert_eq!(seq_mem, par_mem, "memory diverges at {threads} threads");
        }
    }

    #[test]
    fn parallel_without_traces_matches_too() {
        let (seq, seq_mem) = run_with_threads(1, false);
        let (par, par_mem) = run_with_threads(3, false);
        assert!(seq.traces.is_none() && par.traces.is_none());
        assert_eq!(seq.stats, par.stats);
        assert_eq!(seq_mem, par_mem);
    }

    #[test]
    fn outer_write_capture_is_thread_count_invariant() {
        let m = Machine::gtx285();
        let k = staged_kernel(64);
        let launch = LaunchConfig::new_1d(9, 64);
        let capture_with = |threads: usize| {
            let mut gmem = GlobalMemory::new();
            let out = gmem.alloc(u64::from(9u32 * 64) * 4, 128);
            let mut sim = FunctionalSim::new(&m, &k, launch).unwrap();
            sim.set_params(&[out as u32]).set_num_threads(threads);
            gmem.begin_write_capture();
            sim.run(&mut gmem).unwrap();
            gmem.take_captured_writes()
        };
        let seq = capture_with(1);
        assert!(!seq.is_empty());
        assert_eq!(seq, capture_with(4));
    }

    #[test]
    fn errors_are_deterministic_and_leave_memory_untouched() {
        // out buffer sized for only 2 blocks: block 2 is the first to
        // store out of bounds regardless of thread count.
        let m = Machine::gtx285();
        let k = staged_kernel(32);
        let launch = LaunchConfig::new_1d(8, 32);
        let seq_err = {
            let mut gmem = GlobalMemory::new();
            let out = gmem.alloc(2 * 32 * 4, 128);
            let mut sim = FunctionalSim::new(&m, &k, launch).unwrap();
            sim.set_params(&[out as u32]);
            sim.run(&mut gmem).unwrap_err()
        };
        for threads in [2usize, 4, 8] {
            let mut gmem = GlobalMemory::new();
            let out = gmem.alloc(2 * 32 * 4, 128);
            let pristine = gmem.clone();
            let mut sim = FunctionalSim::new(&m, &k, launch).unwrap();
            sim.set_params(&[out as u32]).set_num_threads(threads);
            let err = sim.run(&mut gmem).unwrap_err();
            assert_eq!(
                format!("{err:?}"),
                format!("{seq_err:?}"),
                "error diverges at {threads} threads"
            );
            assert_eq!(gmem, pristine, "memory mutated on error");
        }
    }

    #[test]
    fn auto_resolves_to_at_least_one_worker() {
        assert!(SimEngine::auto().num_threads() >= 1);
        assert_eq!(SimEngine::new(5).num_threads(), 5);
        assert_eq!(SimEngine::default(), SimEngine::auto());
    }

    #[test]
    fn threads_resolution_and_legacy_encoding() {
        assert_eq!(Threads::default(), Threads::Auto);
        assert_eq!(Threads::sequential(), Threads::Fixed(1));
        assert_eq!(Threads::sequential().count(), 1);
        assert_eq!(Threads::Fixed(0).count(), 1);
        assert_eq!(Threads::Fixed(7).count(), 7);
        assert!(Threads::Auto.count() >= 1);
        assert_eq!(Threads::from(0usize), Threads::Auto);
        assert_eq!(Threads::from(3usize), Threads::Fixed(3));
        assert_eq!(Threads::Auto.raw(), 0);
        assert_eq!(Threads::Fixed(3).raw(), 3);
        assert_eq!(
            SimEngine::with_threads(Threads::Fixed(4)),
            SimEngine::new(4)
        );
    }
}
