//! The timing simulator: a coarse cycle-level GTX 285.
//!
//! This is the workspace's stand-in for the paper's physical GPU. It
//! replays per-warp instruction traces (produced by the functional
//! simulator) through:
//!
//! * an **issue/ALU port** per SM — every instruction occupies it for
//!   `warp_size / functional_units(class) + issue_overhead` cycles, which
//!   reproduces the Table 1 throughput ratios and the ≈84%-of-peak
//!   saturation the paper measures;
//! * a **shared-memory port** per SM — 2 cycles per half-warp transaction,
//!   so bank conflicts serialize exactly as §4.2 describes, with a longer
//!   pipeline latency than the ALU (the paper's Figure 2 observation);
//! * a **scoreboard** per warp — in-order issue, register-ready times,
//!   so warp-level parallelism is the only latency-hiding mechanism, as on
//!   real GT200 (paper §4.1);
//! * a **cluster memory pipeline** — 3 SMs share one pipe (GT200 TPC);
//!   each pipe gets 1/10 of the (efficiency-derated) DRAM bandwidth. Blocks
//!   are scheduled to clusters round-robin, which produces the paper's
//!   Figure 3 sawtooth of period 10;
//! * an optional per-cluster **texture cache** for address ranges marked as
//!   texture-bound (Figure 12's `+Cache` variants);
//! * an occupancy-limited **block scheduler**.
//!
//! Calibration constants live in [`TimingConfig::gt200`] and are justified
//! in DESIGN.md §6.

use crate::engine::{SimEngine, Threads};
use crate::grid::LaunchConfig;
use crate::stats::{BlockTrace, DstLatency};
use gpa_hw::{occupancy, KernelResources, Machine};
use gpa_mem::texcache::TexCache;
use std::sync::Arc;

/// Calibrated timing parameters (cycles at the shader clock).
#[derive(Debug, Clone, PartialEq)]
pub struct TimingConfig {
    /// ALU pipeline depth: results ready this many cycles after issue.
    pub alu_latency: f64,
    /// Extra port occupancy per issued instruction (scheduler friction;
    /// calibrates sustained Type II throughput to ≈ 9.3 of 11.1 G/s).
    pub issue_overhead: f64,
    /// Shared-memory pipeline depth (longer than the ALU; Figure 2 right).
    pub smem_latency: f64,
    /// Shared-memory port occupancy per half-warp transaction.
    pub smem_cycles_per_half_txn: f64,
    /// Global-memory latency after the transaction is serviced.
    pub gmem_latency: f64,
    /// Fraction of theoretical DRAM bandwidth sustainable in practice.
    pub dram_efficiency: f64,
    /// Fixed cluster-pipe occupancy per transaction (penalizes many small
    /// transactions beyond their byte cost).
    pub gmem_txn_overhead: f64,
    /// Extra issue-stage occupancy per serialized half-warp transaction
    /// beyond the conflict-free two (bank-conflict replay).
    pub smem_replay_cycles: f64,
    /// Latency of a texture-cache hit.
    pub tex_hit_latency: f64,
    /// Cycles between the last warp arriving at a barrier and release.
    pub barrier_latency: f64,
    /// Cycles to launch a fresh block onto a freed SM slot.
    pub block_launch_latency: f64,
}

impl TimingConfig {
    /// Calibration against the paper's published curves (DESIGN.md §6).
    pub fn gt200() -> TimingConfig {
        TimingConfig {
            alu_latency: 24.0,
            issue_overhead: 0.75,
            smem_latency: 84.0,
            smem_cycles_per_half_txn: 2.0,
            gmem_latency: 500.0,
            dram_efficiency: 0.8,
            gmem_txn_overhead: 1.0,
            smem_replay_cycles: 5.0,
            tex_hit_latency: 40.0,
            barrier_latency: 8.0,
            block_launch_latency: 100.0,
        }
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig::gt200()
    }
}

/// Where block traces come from.
///
/// Homogeneous grids (every block runs the same instruction stream with the
/// same conflict degrees and transaction shapes — matmul, the tridiagonal
/// solver, the microbenchmarks) can share one trace. Data-dependent
/// kernels provide per-block traces, eagerly or lazily.
pub enum TraceSource<'a> {
    /// Every block replays the same trace.
    Homogeneous(Arc<BlockTrace>),
    /// `traces[b]` is block `b`'s trace.
    PerBlock(Vec<Arc<BlockTrace>>),
    /// Traces fetched on demand (keeps memory bounded for huge grids).
    /// Inherently stateful, so the parallel replay path falls back to
    /// one worker for this variant.
    Lazy(Box<dyn FnMut(u32) -> Arc<BlockTrace> + 'a>),
}

impl<'a> TraceSource<'a> {
    /// A [`TraceSource::PerBlock`] from already-collected traces in
    /// block-id order — the bridge from a parallel
    /// [`crate::engine::SimEngine`] run, which batches block execution per
    /// shard and returns the concatenated traces, to the timing replay.
    pub fn from_blocks(traces: Vec<BlockTrace>) -> TraceSource<'static> {
        TraceSource::PerBlock(traces.into_iter().map(Arc::new).collect())
    }

    fn fetch(&mut self, block: u32) -> Arc<BlockTrace> {
        match self {
            TraceSource::Homogeneous(t) => Arc::clone(t),
            TraceSource::PerBlock(v) => Arc::clone(&v[block as usize]),
            TraceSource::Lazy(f) => f(block),
        }
    }

    /// A shareable immutable view for the parallel replay path; `None`
    /// for the stateful [`TraceSource::Lazy`] variant.
    fn view(&self) -> Option<TraceView<'_>> {
        match self {
            TraceSource::Homogeneous(t) => Some(TraceView::Homogeneous(t)),
            TraceSource::PerBlock(v) => Some(TraceView::PerBlock(v)),
            TraceSource::Lazy(_) => None,
        }
    }
}

/// Immutable, `Send + Sync` view of a [`TraceSource`] used to fetch
/// traces from parallel cluster workers.
#[derive(Clone, Copy)]
enum TraceView<'s> {
    Homogeneous(&'s Arc<BlockTrace>),
    PerBlock(&'s [Arc<BlockTrace>]),
}

impl TraceView<'_> {
    fn fetch(&self, block: u32) -> Arc<BlockTrace> {
        match self {
            TraceView::Homogeneous(t) => Arc::clone(t),
            TraceView::PerBlock(v) => Arc::clone(&v[block as usize]),
        }
    }
}

impl std::fmt::Debug for TraceSource<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceSource::Homogeneous(_) => f.write_str("TraceSource::Homogeneous"),
            TraceSource::PerBlock(v) => write!(f, "TraceSource::PerBlock({} blocks)", v.len()),
            TraceSource::Lazy(_) => f.write_str("TraceSource::Lazy"),
        }
    }
}

/// Output of a timing run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingResult {
    /// End-to-end kernel cycles (max over clusters).
    pub cycles: f64,
    /// `cycles` at the shader clock.
    pub seconds: f64,
    /// Completion time of each simulated cluster.
    pub per_cluster_cycles: Vec<f64>,
    /// Warp-instructions issued.
    pub issued: u64,
    /// Sum of issue-port busy cycles across simulated SMs.
    pub alu_busy: f64,
    /// Sum of shared-memory-port busy cycles across simulated SMs.
    pub smem_busy: f64,
    /// Sum of cluster-pipe busy cycles across simulated clusters.
    pub pipe_busy: f64,
    /// Global bytes moved through the cluster pipes.
    pub gmem_bytes: u64,
    /// Texture-cache hit rate (0 when no texture regions configured).
    pub tex_hit_rate: f64,
}

impl TimingResult {
    /// Achieved global-memory bandwidth in bytes/second.
    pub fn global_bandwidth(&self) -> f64 {
        if self.seconds > 0.0 {
            self.gmem_bytes as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// The timing simulator. One instance per machine + calibration.
#[derive(Debug, Clone)]
pub struct TimingSim<'m> {
    machine: &'m Machine,
    config: TimingConfig,
    tex_regions: Vec<(u64, u64)>,
    uniform_clusters: bool,
    threads: Threads,
}

impl<'m> TimingSim<'m> {
    /// A timing simulator with the default GT200 calibration.
    pub fn new(machine: &'m Machine) -> TimingSim<'m> {
        TimingSim {
            machine,
            config: TimingConfig::gt200(),
            tex_regions: Vec::new(),
            uniform_clusters: false,
            threads: Threads::sequential(),
        }
    }

    /// Override the calibration.
    pub fn with_config(mut self, config: TimingConfig) -> TimingSim<'m> {
        self.config = config;
        self
    }

    /// Address ranges whose loads go through the per-cluster texture cache.
    pub fn set_texture_regions(&mut self, regions: Vec<(u64, u64)>) -> &mut Self {
        self.tex_regions = regions;
        self
    }

    /// Declare the workload homogeneous across clusters: only the most
    /// loaded cluster is simulated and the result is scaled accordingly.
    /// Exact for grids of identical blocks; a large speedup for big grids.
    pub fn assume_uniform_clusters(&mut self, yes: bool) -> &mut Self {
        self.uniform_clusters = yes;
        self
    }

    /// Shard cluster replay across this many worker threads (clusters are
    /// fully independent — own SMs, own shared-memory port, own memory
    /// pipe, own texture cache). The default is the sequential walk, like
    /// [`crate::FunctionalSim`]; the options layers above default to
    /// auto. Output is bit-identical for every thread count: outcomes are
    /// merged in cluster-id order. [`TraceSource::Lazy`] is stateful and
    /// always replays on one worker.
    pub fn set_threads(&mut self, threads: Threads) -> &mut Self {
        self.threads = threads;
        self
    }

    /// Configured worker-thread selector for cluster replay.
    pub fn threads(&self) -> Threads {
        self.threads
    }

    /// Timing parameters in use.
    pub fn config(&self) -> &TimingConfig {
        &self.config
    }

    /// Replay a launch and return its simulated time.
    ///
    /// `resources` determines occupancy (resident blocks per SM) exactly as
    /// paper Table 2 computes it.
    ///
    /// # Panics
    ///
    /// Panics if traces are inconsistent (warps of one block disagree on
    /// barrier counts), which indicates a bug in trace generation.
    pub fn run(
        &self,
        source: &mut TraceSource<'_>,
        launch: &LaunchConfig,
        resources: KernelResources,
    ) -> TimingResult {
        let _span = gpa_telemetry::PhaseSpan::start(gpa_telemetry::phase::TIMING_REPLAY);
        let nclusters = self.machine.num_clusters();
        let nblocks = launch.num_blocks();
        let occ = occupancy(self.machine, resources);
        assert!(occ.blocks > 0, "kernel does not fit on an SM");

        let simulate: Vec<u32> = if self.uniform_clusters {
            // The first cluster always has the most blocks.
            vec![0]
        } else {
            (0..nclusters).collect()
        };

        let outcomes = self.run_clusters(&simulate, source, nblocks, occ.blocks);

        // Deterministic merge: fold outcomes in cluster-id order (the
        // `simulate` list is ascending and the parallel path returns one
        // outcome per entry, in order), so the f64 accumulation below is
        // the same sum in the same order for every thread count.
        let mut per_cluster = vec![0.0f64; nclusters as usize];
        let mut issued = 0u64;
        let mut alu_busy = 0.0;
        let mut smem_busy = 0.0;
        let mut pipe_busy = 0.0;
        let mut gmem_bytes = 0u64;
        let mut tex_hits = 0u64;
        let mut tex_total = 0u64;

        for (&c, r) in simulate.iter().zip(&outcomes) {
            per_cluster[c as usize] = r.end;
            issued += r.issued;
            alu_busy += r.alu_busy;
            smem_busy += r.smem_busy;
            pipe_busy += r.pipe_busy;
            gmem_bytes += r.gmem_bytes;
            tex_hits += r.tex_hits;
            tex_total += r.tex_total;
        }

        if self.uniform_clusters {
            // Unsimulated clusters take at most as long as cluster 0.
            let t0 = per_cluster[0];
            for (c, slot) in per_cluster.iter_mut().enumerate().skip(1) {
                // Round-robin assignment: cluster c got blocks iff c < nblocks.
                *slot = if (c as u32) < nblocks { t0 } else { 0.0 };
            }
            // Scale aggregate counters to the whole chip. Integer counters
            // scale exactly in integer arithmetic (`issued * nblocks` fits
            // u128 comfortably) — on a grid that divides evenly across
            // clusters this is exact, with no float round-trip.
            let q0 = ClusterQueue::new(0, nclusters, nblocks).len().max(1);
            issued = (u128::from(issued) * u128::from(nblocks) / q0 as u128) as u64;
            gmem_bytes = (u128::from(gmem_bytes) * u128::from(nblocks) / q0 as u128) as u64;
            let scale = f64::from(nblocks) / q0 as f64;
            alu_busy *= scale;
            smem_busy *= scale;
            pipe_busy *= scale;
        }

        let cycles = per_cluster.iter().cloned().fold(0.0, f64::max);
        TimingResult {
            cycles,
            seconds: cycles / self.machine.clock_hz,
            per_cluster_cycles: per_cluster,
            issued,
            alu_busy,
            smem_busy,
            pipe_busy,
            gmem_bytes,
            tex_hit_rate: if tex_total == 0 {
                0.0
            } else {
                tex_hits as f64 / tex_total as f64
            },
        }
    }

    /// Replay `simulate`'s clusters, sharded across the configured worker
    /// threads, returning one [`ClusterOutcome`] per entry, in order.
    ///
    /// Clusters share nothing (the paper's TPC: private SMs, shared-memory
    /// ports, memory pipe, texture cache), so each worker replays a
    /// contiguous shard of the cluster list and the results concatenate
    /// into exactly the sequence the sequential walk would produce.
    fn run_clusters(
        &self,
        simulate: &[u32],
        source: &mut TraceSource<'_>,
        nblocks: u32,
        blocks_per_sm: u32,
    ) -> Vec<ClusterOutcome> {
        let nclusters = self.machine.num_clusters();
        let workers = match source.view() {
            // A stateful fetch closure cannot be shared across workers.
            None => 1,
            Some(_) => self.threads.count().min(simulate.len()).max(1),
        };
        if workers <= 1 {
            return simulate
                .iter()
                .map(|&c| {
                    let queue = ClusterQueue::new(c, nclusters, nblocks);
                    let mut fetch = |b: u32| source.fetch(b);
                    self.run_cluster(queue, &mut fetch, blocks_per_sm)
                })
                .collect();
        }
        let view = source.view().expect("checked above");
        let plan = SimEngine::shard_plan(simulate.len() as u32, workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .into_iter()
                .map(|shard| {
                    let shard = &simulate[shard.start as usize..shard.end as usize];
                    scope.spawn(move || {
                        shard
                            .iter()
                            .map(|&c| {
                                let queue = ClusterQueue::new(c, nclusters, nblocks);
                                let mut fetch = |b: u32| view.fetch(b);
                                self.run_cluster(queue, &mut fetch, blocks_per_sm)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("timing worker panicked"))
                .collect()
        })
    }

    /// The SM's earliest-issuable warp: minimum issue time over resident
    /// warps, ties broken by loose round-robin distance from the SM's
    /// rotation pointer (greedy earliest-first alone phase-locks warps
    /// into convoys and lets the port idle; GT200 schedulers rotate).
    ///
    /// Selection reads only SM-local state (`alu_free`, `smem_free`,
    /// `rotate`, warp scoreboards) — never the shared cluster pipe — which
    /// is what lets [`Self::run_cluster`] cache this result per SM and
    /// recompute it only for the SM that last issued.
    fn sm_best(sm: &SmState) -> Option<Candidate> {
        let total: usize = sm.blocks.iter().map(|b| b.warps.len()).sum();
        let mut sm_best: Option<Candidate> = None;
        let mut flat = 0usize;
        for (bi, blk) in sm.blocks.iter().enumerate() {
            for (wi, w) in blk.warps.iter().enumerate() {
                let idx = flat;
                flat += 1;
                if w.done() || w.waiting {
                    continue;
                }
                let e = &blk.trace.warps[wi][w.cursor];
                let mut t = w.ready.max(sm.alu_free);
                if e.smem_half_txns > 0 {
                    t = t.max(sm.smem_free);
                }
                for s in 0..usize::from(e.nsrcs) {
                    t = t.max(w.reg_ready[usize::from(e.srcs[s])]);
                }
                let dist = (idx + total - sm.rotate % total.max(1)) % total.max(1);
                let better = match sm_best {
                    None => true,
                    Some((_, _, bt, bdist)) => t < bt - 1e-9 || (t < bt + 1e-9 && dist < bdist),
                };
                if better {
                    sm_best = Some((bi, wi, t, dist));
                }
            }
        }
        sm_best
    }

    fn run_cluster(
        &self,
        queue: ClusterQueue,
        fetch: &mut dyn FnMut(u32) -> Arc<BlockTrace>,
        blocks_per_sm: u32,
    ) -> ClusterOutcome {
        let cfg = &self.config;
        let m = self.machine;
        let nsms = m.sms_per_cluster as usize;
        let bytes_per_cycle = m.peak_global_bandwidth() * cfg.dram_efficiency
            / f64::from(m.num_clusters())
            / m.clock_hz;

        let mut sms: Vec<SmState> = (0..nsms).map(|_| SmState::default()).collect();
        let mut pipe_free = 0.0f64;
        let mut tex = TexCache::gt200_tpc();
        let mut next_block = 0usize;
        let mut out = ClusterOutcome::default();
        // Retired blocks donate their warp scoreboards back to a pool so
        // admitting a fresh block does not reallocate.
        let mut warp_pool: Vec<Vec<WarpRun>> = Vec::new();

        // Initial fill, round-robin across the cluster's SMs.
        'fill: for _ in 0..blocks_per_sm {
            for sm in sms.iter_mut() {
                if next_block >= queue.len() {
                    break 'fill;
                }
                let trace = fetch(queue.get(next_block));
                sm.blocks.push(BlockRun::new(trace, 0.0, &mut warp_pool));
                next_block += 1;
            }
        }

        // Incremental issue scheduling: every event that can change an
        // SM's best candidate — issuing (alu_free/smem_free/rotate/
        // scoreboard updates), barrier release, block retirement, block
        // admission — happens on the SM that issues this iteration, so
        // only that SM's cached candidate is recomputed. The global pick
        // below compares cached candidates in SM index order with strict
        // `t < bt`, exactly the order and tie-break of a full rescan.
        let mut cached: Vec<Option<Candidate>> = vec![None; nsms];
        let mut dirty: Vec<bool> = vec![true; nsms];

        loop {
            let mut best: Option<(usize, usize, usize, f64)> = None;
            for si in 0..nsms {
                if dirty[si] {
                    cached[si] = Self::sm_best(&sms[si]);
                    dirty[si] = false;
                }
                if let Some((bi, wi, t, _dist)) = cached[si] {
                    if best.is_none_or(|(_, _, _, bt)| t < bt) {
                        best = Some((si, bi, wi, t));
                    }
                }
            }

            let Some((si, bi, wi, t)) = best else {
                // No issuable warp: every resident warp is done or waiting.
                let any_waiting = sms
                    .iter()
                    .any(|sm| sm.blocks.iter().any(|b| b.warps.iter().any(|w| w.waiting)));
                assert!(!any_waiting, "barrier deadlock in timing replay");
                break;
            };

            // Issue. Everything below mutates only SM `si` (plus the
            // cluster-shared pipe/texture state, which selection ignores),
            // so only `si`'s cached candidate is invalidated.
            dirty[si] = true;
            let sm = &mut sms[si];
            sm.rotate = sm.blocks[..bi].iter().map(|b| b.warps.len()).sum::<usize>() + wi + 1;
            let blk = &mut sm.blocks[bi];
            let trace = Arc::clone(&blk.trace);
            let e = &trace.warps[wi][blk.warps[wi].cursor];
            out.issued += 1;

            // Bank-conflicted shared accesses are replayed through the
            // issue stage (one slot per serialized half-warp transaction),
            // which is what makes conflict-heavy kernels shared-memory
            // bound on GT200 (paper §5.2). A conflict-free access
            // (2 half-warp transactions) fits the normal issue slot.
            let base_occ = f64::from(m.warp_size) / f64::from(m.fus(e.class)) + cfg.issue_overhead;
            let occ_cycles = if e.smem_half_txns > 2 {
                base_occ + cfg.smem_replay_cycles * f64::from(e.smem_half_txns - 2)
            } else {
                base_occ
            };
            sm.alu_free = t + occ_cycles;
            out.alu_busy += occ_cycles;

            let mut data_ready = t + cfg.alu_latency;
            if e.smem_half_txns > 0 {
                let occ_smem = cfg.smem_cycles_per_half_txn * f64::from(e.smem_half_txns);
                let start = sm.smem_free.max(t);
                sm.smem_free = start + occ_smem;
                out.smem_busy += occ_smem;
                data_ready = start + occ_smem + cfg.smem_latency;
            }
            if let Some(txs) = &e.gmem {
                let mut last = t;
                for tx in txs.iter() {
                    let is_tex = self
                        .tex_regions
                        .iter()
                        .any(|(b, l)| tx.base >= *b && tx.base < b + l);
                    if is_tex {
                        out.tex_total += 1;
                        if tex.access(tx.base) {
                            out.tex_hits += 1;
                            last = last.max(t + cfg.tex_hit_latency);
                            continue;
                        }
                    }
                    let start = pipe_free.max(t);
                    let service = f64::from(tx.size) / bytes_per_cycle + cfg.gmem_txn_overhead;
                    pipe_free = start + service;
                    out.pipe_busy += service;
                    out.gmem_bytes += u64::from(tx.size);
                    last = last.max(start + service + cfg.gmem_latency);
                    out.end = out.end.max(start + service + cfg.gmem_latency);
                }
                if e.gmem_load {
                    data_ready = last;
                }
            }

            let w = &mut blk.warps[wi];
            w.ready = t + occ_cycles;
            if e.dst_n > 0 {
                let ready = match e.dst_lat {
                    DstLatency::Alu => t + cfg.alu_latency,
                    DstLatency::Smem | DstLatency::Gmem => data_ready,
                };
                for k in 0..usize::from(e.dst_n) {
                    w.reg_ready[usize::from(e.dst) + k] = ready;
                }
            }
            w.cursor += 1;
            out.end = out.end.max(w.ready);

            if e.bar {
                w.waiting = true;
                blk.arrived += 1;
                // Warps that already finished their whole trace no longer
                // participate in barriers (GT200 semantics for exited
                // threads).
                let live = blk.warps.iter().filter(|w| !w.done()).count();
                if blk.arrived >= live {
                    let release = t + cfg.barrier_latency;
                    for w in &mut blk.warps {
                        if w.waiting {
                            w.waiting = false;
                            w.ready = w.ready.max(release);
                        }
                    }
                    blk.arrived = 0;
                }
            }

            // Block completion → admit the next queued block to this SM.
            if blk.warps.iter().all(WarpRun::done) {
                let done_at = blk.warps.iter().map(|w| w.ready).fold(t, f64::max);
                let mut retired = sm.blocks.swap_remove(bi);
                retired.warps.clear();
                warp_pool.push(retired.warps);
                if next_block < queue.len() {
                    let trace = fetch(queue.get(next_block));
                    next_block += 1;
                    sm.blocks.push(BlockRun::new(
                        trace,
                        done_at + cfg.block_launch_latency,
                        &mut warp_pool,
                    ));
                }
            }
        }

        out.end = out.end.max(pipe_free).max(
            sms.iter()
                .map(|s| s.alu_free.max(s.smem_free))
                .fold(0.0, f64::max),
        );
        out
    }
}

/// An SM-local issue candidate: `(block index, warp index, issue time,
/// round-robin distance)`.
type Candidate = (usize, usize, f64, usize);

/// A cluster's block queue under round-robin assignment (paper Figure 3):
/// cluster `c` runs blocks `c, c + nclusters, c + 2·nclusters, …` — pure
/// arithmetic, so nothing is materialized per cluster.
#[derive(Debug, Clone, Copy)]
struct ClusterQueue {
    first: u32,
    stride: u32,
    len: usize,
}

impl ClusterQueue {
    fn new(cluster: u32, nclusters: u32, nblocks: u32) -> ClusterQueue {
        debug_assert!(cluster < nclusters);
        let len = if nblocks > cluster {
            ((nblocks - cluster - 1) / nclusters + 1) as usize
        } else {
            0
        };
        ClusterQueue {
            first: cluster,
            stride: nclusters,
            len,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, i: usize) -> u32 {
        debug_assert!(i < self.len);
        self.first + i as u32 * self.stride
    }
}

#[derive(Debug, Default)]
struct ClusterOutcome {
    end: f64,
    issued: u64,
    alu_busy: f64,
    smem_busy: f64,
    pipe_busy: f64,
    gmem_bytes: u64,
    tex_hits: u64,
    tex_total: u64,
}

#[derive(Debug, Default)]
struct SmState {
    blocks: Vec<BlockRun>,
    alu_free: f64,
    smem_free: f64,
    /// Loose round-robin pointer over the SM's flattened warp list.
    rotate: usize,
}

#[derive(Debug)]
struct BlockRun {
    trace: Arc<BlockTrace>,
    warps: Vec<WarpRun>,
    arrived: usize,
}

impl BlockRun {
    fn new(trace: Arc<BlockTrace>, start: f64, pool: &mut Vec<Vec<WarpRun>>) -> BlockRun {
        let mut warps = pool.pop().unwrap_or_default();
        debug_assert!(warps.is_empty());
        warps.extend(trace.warps.iter().map(|t| WarpRun {
            len: t.len(),
            cursor: 0,
            ready: start,
            waiting: false,
            reg_ready: [0.0; 132],
        }));
        BlockRun {
            trace,
            warps,
            arrived: 0,
        }
    }
}

#[derive(Debug)]
struct WarpRun {
    len: usize,
    cursor: usize,
    ready: f64,
    waiting: bool,
    reg_ready: [f64; 132],
}

impl WarpRun {
    fn done(&self) -> bool {
        self.cursor >= self.len
    }
}

#[cfg(test)]
#[path = "timing_tests.rs"]
mod timing_tests;
