//! Simulated global memory: a flat bump-allocated arena.

/// One captured store: `(device address, value written)`.
///
/// The parallel [`crate::engine::SimEngine`] runs each block shard against
/// a private copy of memory with capture enabled, then replays the logs in
/// shard (= block-id) order so the merged memory image is bit-identical to
/// a sequential run.
pub type WriteRecord = (u64, u32);

/// The device's global memory.
///
/// A flat byte arena with a bump allocator. Allocations start above address
/// zero so stray null-ish pointers fault, and every access is
/// bounds-checked against the allocated extent.
///
/// Equality ([`PartialEq`]) compares the allocated contents and extent
/// only, not instrumentation state such as an active write-capture log.
#[derive(Debug, Clone)]
pub struct GlobalMemory {
    data: Vec<u8>,
    cursor: u64,
    capture: Option<Vec<WriteRecord>>,
}

impl PartialEq for GlobalMemory {
    fn eq(&self, other: &Self) -> bool {
        self.cursor == other.cursor && self.data == other.data
    }
}

/// Out-of-bounds access marker returned by the read/write accessors;
/// callers attach the faulting address and context when wrapping it into a
/// located [`crate::SimError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OobAccess;

impl std::fmt::Display for OobAccess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("out-of-bounds global memory access")
    }
}

impl std::error::Error for OobAccess {}

/// First valid device address (catches zero-initialized pointers).
const BASE: u64 = 256;

impl GlobalMemory {
    /// An empty memory.
    pub fn new() -> GlobalMemory {
        GlobalMemory {
            data: Vec::new(),
            cursor: BASE,
            capture: None,
        }
    }

    /// Start logging every [`GlobalMemory::write_u32`] into a capture
    /// buffer (clears any previous log). Used by the parallel simulation
    /// engine to extract a shard's side effects for deterministic replay.
    pub fn begin_write_capture(&mut self) {
        self.capture = Some(Vec::new());
    }

    /// Stop capturing and return the log of writes since
    /// [`GlobalMemory::begin_write_capture`], in execution order. Returns
    /// an empty log when capture was never enabled.
    pub fn take_captured_writes(&mut self) -> Vec<WriteRecord> {
        self.capture.take().unwrap_or_default()
    }

    /// Replay a captured write log into this memory. If *this* memory has
    /// an active capture of its own, the replayed records are appended to
    /// it — so an outer capture observes the same log whether the device
    /// writes arrived directly (sequential run) or via a shard replay
    /// (parallel run).
    ///
    /// # Errors
    ///
    /// Returns [`OobAccess`] when any record falls outside the allocated
    /// extent (the log came from a memory with a different layout); no
    /// writes are applied in that case.
    pub fn apply_writes(&mut self, writes: &[WriteRecord]) -> Result<(), OobAccess> {
        if writes.iter().any(|&(a, _)| !self.in_bounds(a, 4)) {
            return Err(OobAccess);
        }
        for &(addr, value) in writes {
            let i = addr as usize;
            self.data[i..i + 4].copy_from_slice(&value.to_le_bytes());
        }
        if let Some(log) = self.capture.as_mut() {
            log.extend_from_slice(writes);
        }
        Ok(())
    }

    /// Allocate `bytes` aligned to `align` (power of two) and return the
    /// device address. Contents are zero-initialized.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = self.cursor.div_ceil(align) * align;
        self.cursor = base + bytes;
        if self.cursor as usize > self.data.len() {
            self.data.resize(self.cursor as usize, 0);
        }
        base
    }

    /// Allocate and fill with `f32` values; returns the device address.
    pub fn alloc_f32(&mut self, values: &[f32]) -> u64 {
        let addr = self.alloc(values.len() as u64 * 4, 4);
        for (i, v) in values.iter().enumerate() {
            self.write_u32(addr + i as u64 * 4, v.to_bits()).unwrap();
        }
        addr
    }

    /// Allocate and fill with `u32` values; returns the device address.
    pub fn alloc_u32(&mut self, values: &[u32]) -> u64 {
        let addr = self.alloc(values.len() as u64 * 4, 4);
        for (i, v) in values.iter().enumerate() {
            self.write_u32(addr + i as u64 * 4, *v).unwrap();
        }
        addr
    }

    /// One-past-the-end of the allocated extent.
    pub fn extent(&self) -> u64 {
        self.cursor
    }

    /// Returns `true` if `[addr, addr+len)` lies inside allocated memory.
    pub fn in_bounds(&self, addr: u64, len: u32) -> bool {
        addr >= BASE && addr + u64::from(len) <= self.cursor
    }

    /// Read a 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`OobAccess`] when out of bounds (callers wrap this into a
    /// located [`crate::SimError`]).
    pub fn read_u32(&self, addr: u64) -> Result<u32, OobAccess> {
        if !self.in_bounds(addr, 4) {
            return Err(OobAccess);
        }
        let i = addr as usize;
        Ok(u32::from_le_bytes(self.data[i..i + 4].try_into().unwrap()))
    }

    /// Write a 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`OobAccess`] when out of bounds.
    pub fn write_u32(&mut self, addr: u64, value: u32) -> Result<(), OobAccess> {
        if !self.in_bounds(addr, 4) {
            return Err(OobAccess);
        }
        let i = addr as usize;
        self.data[i..i + 4].copy_from_slice(&value.to_le_bytes());
        if let Some(log) = self.capture.as_mut() {
            log.push((addr, value));
        }
        Ok(())
    }

    /// Read an `f32`.
    ///
    /// # Errors
    ///
    /// Returns [`OobAccess`] when out of bounds.
    pub fn read_f32(&self, addr: u64) -> Result<f32, OobAccess> {
        self.read_u32(addr).map(f32::from_bits)
    }

    /// Read `n` consecutive `f32`s starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`OobAccess`] when any word is out of bounds.
    pub fn read_f32s(&self, addr: u64, n: usize) -> Result<Vec<f32>, OobAccess> {
        (0..n).map(|i| self.read_f32(addr + i as u64 * 4)).collect()
    }

    /// Read `n` consecutive `u32`s starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`OobAccess`] when any word is out of bounds.
    pub fn read_u32s(&self, addr: u64, n: usize) -> Result<Vec<u32>, OobAccess> {
        (0..n).map(|i| self.read_u32(addr + i as u64 * 4)).collect()
    }
}

impl Default for GlobalMemory {
    fn default() -> Self {
        GlobalMemory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = GlobalMemory::new();
        let a = m.alloc(10, 4);
        let b = m.alloc(16, 128);
        assert_eq!(a % 4, 0);
        assert_eq!(b % 128, 0);
        assert!(b >= a + 10);
    }

    #[test]
    fn round_trip_values() {
        let mut m = GlobalMemory::new();
        let a = m.alloc_f32(&[1.5, -2.0, 3.25]);
        assert_eq!(m.read_f32s(a, 3).unwrap(), vec![1.5, -2.0, 3.25]);
        let b = m.alloc_u32(&[7, 8]);
        assert_eq!(m.read_u32s(b, 2).unwrap(), vec![7, 8]);
    }

    #[test]
    fn zero_address_faults() {
        let m = GlobalMemory::new();
        assert!(m.read_u32(0).is_err());
        assert!(!m.in_bounds(0, 4));
    }

    #[test]
    fn out_of_extent_faults() {
        let mut m = GlobalMemory::new();
        let a = m.alloc(8, 4);
        assert!(m.read_u32(a + 8).is_err());
        assert!(m.write_u32(a + 8, 1).is_err());
    }

    #[test]
    fn capture_logs_and_replays() {
        let mut m = GlobalMemory::new();
        let a = m.alloc(16, 4);
        let mut shard = m.clone();
        shard.begin_write_capture();
        shard.write_u32(a, 7).unwrap();
        shard.write_u32(a + 8, 9).unwrap();
        shard.write_u32(a, 11).unwrap(); // overwrites preserve order
        let log = shard.take_captured_writes();
        assert_eq!(log, vec![(a, 7), (a + 8, 9), (a, 11)]);
        m.apply_writes(&log).unwrap();
        assert_eq!(m, shard);
        assert_eq!(m.read_u32(a).unwrap(), 11);
        assert_eq!(m.read_u32(a + 8).unwrap(), 9);
        // Replay of an out-of-layout log is rejected.
        let small = GlobalMemory::new();
        assert!(small.clone().apply_writes(&log).is_err());
        assert_ne!(small, m);
    }

    #[test]
    fn replay_feeds_an_outer_capture() {
        // An outer capture must see the same log whether writes arrive
        // directly or via a shard replay (parallel-engine merge).
        let mut m = GlobalMemory::new();
        let a = m.alloc(8, 4);
        m.begin_write_capture();
        m.write_u32(a, 1).unwrap();
        m.apply_writes(&[(a + 4, 2), (a, 3)]).unwrap();
        assert_eq!(m.take_captured_writes(), vec![(a, 1), (a + 4, 2), (a, 3)]);
    }

    #[test]
    fn capture_disabled_by_default_and_after_take() {
        let mut m = GlobalMemory::new();
        let a = m.alloc(4, 4);
        m.write_u32(a, 1).unwrap();
        assert!(m.take_captured_writes().is_empty());
        m.begin_write_capture();
        m.write_u32(a, 2).unwrap();
        let _ = m.take_captured_writes();
        m.write_u32(a, 3).unwrap();
        assert!(m.take_captured_writes().is_empty());
    }

    #[test]
    fn contents_zero_initialized() {
        let mut m = GlobalMemory::new();
        let a = m.alloc(64, 4);
        assert_eq!(m.read_u32(a + 60).unwrap(), 0);
    }
}
