#![warn(missing_docs)]

//! Functional and timing simulators for a GT200-class GPU.
//!
//! Two simulators share the [`gpa_isa`] instruction set:
//!
//! * [`func::FunctionalSim`] — the **Barra substitute** (paper Figure 1):
//!   executes a kernel warp-lockstep over a grid, with PDOM-stack branch
//!   divergence, and collects the *dynamic* statistics the model consumes —
//!   warp-level instruction counts per Table 1 class, shared-memory
//!   transactions weighted by bank conflicts, coalesced global-memory
//!   transactions at several granularities, and per-barrier stage splits.
//!   It can also record per-warp instruction traces for the timing
//!   simulator. Grids can execute sequentially or sharded across worker
//!   threads by [`engine::SimEngine`] with bit-identical output
//!   ([`func::FunctionalSim::set_num_threads`]).
//! * [`timing::TimingSim`] — the **hardware substitute**: a coarse
//!   cycle-level model of the GTX 285 (scoreboarded in-order warp issue,
//!   per-class port occupancy, a 16-bank shared-memory port, TPC clusters
//!   sharing a memory pipeline, a DRAM bandwidth server, and an
//!   occupancy-limited block scheduler). Microbenchmarks "measure" this
//!   machine, and applications' *measured* times come from it; the
//!   analytical model in `gpa-core` never sees its internals — only the
//!   published machine description — so model-vs-measured comparisons are
//!   meaningful, as in the paper.
//!
//! See DESIGN.md §4.2 for the calibration of the timing parameters against
//! the paper's published curves.

pub mod engine;
pub mod error;
pub mod func;
pub mod grid;
pub mod memory;
pub mod stats;
pub mod timing;
pub mod trace_pool;

pub use engine::{SimEngine, Threads};
pub use error::SimError;
pub use func::FunctionalSim;
pub use grid::LaunchConfig;
pub use memory::GlobalMemory;
pub use stats::{BlockTrace, DynamicStats, StageStats};
pub use timing::{TimingConfig, TimingResult, TimingSim, TraceSource};
