//! The functional simulator (Barra substitute).
//!
//! Executes a kernel warp-lockstep over a grid. Lanes of a warp step
//! together under an active mask; branch divergence uses the classic
//! immediate-postdominator reconvergence stack driven by
//! [`gpa_isa::cfg::Cfg`]. While executing, the simulator gathers the
//! dynamic statistics of paper Figure 1 (instruction counts per class,
//! bank-conflict-weighted shared transactions, coalesced global
//! transactions at three granularities, barrier stage splits) and — when
//! asked — per-warp instruction traces for the timing simulator.

use crate::error::SimError;
use crate::grid::LaunchConfig;
use crate::memory::GlobalMemory;
use crate::stats::{
    BlockTrace, DstLatency, DynamicStats, RegionStats, StageStats, TraceEntry, GRANULARITIES,
    GRAN_GT200,
};
use gpa_hw::Machine;
use gpa_isa::cfg::Cfg;
use gpa_isa::instr::{Instruction, MemAddr, NumTy, Op, Reg, SpecialReg, Src};
use gpa_isa::kernel::Kernel;
use gpa_mem::bank::{atomic_bank_transactions, bank_transactions, BankConfig};
use gpa_mem::coalesce::{coalesce_half_warp_with, CoalesceConfig};

/// Hardware fused-multiply-add dispatch.
///
/// `f32::mul_add`/`f64::mul_add` lower to libm calls unless the build
/// enables the FMA target feature, and the baseline x86-64 target does
/// not. IEEE 754 `fusedMultiplyAdd` has exactly one correct answer, so
/// the hardware instruction is bit-identical to the libm fallback — this
/// module just picks the fast one at runtime.
mod fma {
    #[cfg(target_arch = "x86_64")]
    pub fn available() -> bool {
        // Detection is cached by std; this is an atomic load after the
        // first call.
        std::arch::is_x86_feature_detected!("fma")
    }

    /// Fused `a * b + c`, single rounding.
    ///
    /// # Safety
    ///
    /// The caller must ensure [`available`] returned `true`.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "fma")]
    pub unsafe fn f32_fma(a: f32, b: f32, c: f32) -> f32 {
        use std::arch::x86_64::{_mm_cvtss_f32, _mm_fmadd_ss, _mm_set_ss};
        _mm_cvtss_f32(_mm_fmadd_ss(_mm_set_ss(a), _mm_set_ss(b), _mm_set_ss(c)))
    }

    /// Fused `a * b + c`, single rounding.
    ///
    /// # Safety
    ///
    /// The caller must ensure [`available`] returned `true`.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "fma")]
    pub unsafe fn f64_fma(a: f64, b: f64, c: f64) -> f64 {
        use std::arch::x86_64::{_mm_cvtsd_f64, _mm_fmadd_sd, _mm_set_sd};
        _mm_cvtsd_f64(_mm_fmadd_sd(_mm_set_sd(a), _mm_set_sd(b), _mm_set_sd(c)))
    }

    #[cfg(not(target_arch = "x86_64"))]
    pub fn available() -> bool {
        false
    }

    /// Portable stand-in (never reached: [`available`] is `false` here).
    ///
    /// # Safety
    ///
    /// Trivially safe; marked `unsafe` to match the x86-64 signature.
    #[cfg(not(target_arch = "x86_64"))]
    pub unsafe fn f32_fma(a: f32, b: f32, c: f32) -> f32 {
        a.mul_add(b, c)
    }

    /// Portable stand-in (never reached: [`available`] is `false` here).
    ///
    /// # Safety
    ///
    /// Trivially safe; marked `unsafe` to match the x86-64 signature.
    #[cfg(not(target_arch = "x86_64"))]
    pub unsafe fn f64_fma(a: f64, b: f64, c: f64) -> f64 {
        a.mul_add(b, c)
    }

    /// Fused multiply-add across a full warp: `out[l] = a[l] * b[l] + c[l]`
    /// with a single rounding per lane. Inside an FMA-enabled function
    /// `mul_add` lowers to the hardware instruction and the loop
    /// vectorizes; the result is still IEEE 754 `fusedMultiplyAdd`,
    /// bit-identical to the libm path.
    ///
    /// # Safety
    ///
    /// The caller must ensure [`available`] returned `true`.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "fma")]
    pub unsafe fn fmad_warp(a: &[u32; 32], b: &[u32; 32], c: &[u32; 32], out: &mut [u32; 32]) {
        for l in 0..32 {
            out[l] = f32::from_bits(a[l])
                .mul_add(f32::from_bits(b[l]), f32::from_bits(c[l]))
                .to_bits();
        }
    }

    /// Portable stand-in (never reached: [`available`] is `false` here).
    ///
    /// # Safety
    ///
    /// Trivially safe; marked `unsafe` to match the x86-64 signature.
    #[cfg(not(target_arch = "x86_64"))]
    pub unsafe fn fmad_warp(a: &[u32; 32], b: &[u32; 32], c: &[u32; 32], out: &mut [u32; 32]) {
        for l in 0..32 {
            out[l] = f32::from_bits(a[l])
                .mul_add(f32::from_bits(b[l]), f32::from_bits(c[l]))
                .to_bits();
        }
    }
}

/// Result of a full-grid functional run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Aggregated dynamic statistics.
    pub stats: DynamicStats,
    /// Per-block traces, when trace collection was enabled.
    pub traces: Option<Vec<BlockTrace>>,
}

/// The functional simulator. Construct with [`FunctionalSim::new`],
/// configure, then [`FunctionalSim::run`].
#[derive(Debug)]
pub struct FunctionalSim<'a> {
    machine: &'a Machine,
    kernel: &'a Kernel,
    launch: LaunchConfig,
    params: Vec<u32>,
    region_defs: Vec<(String, u64, u64, bool)>,
    fuel: u64,
    collect_trace: bool,
    num_threads: usize,
    cfg: Cfg,
    bank_cfg: BankConfig,
    coalesce_cfgs: [CoalesceConfig; 3],
}

const WARP: usize = 32;
const PRED_BASE: u8 = 128;
const NO_RECONV: usize = usize::MAX;

impl<'a> FunctionalSim<'a> {
    /// Prepare a simulation of `kernel` with shape `launch` on `machine`.
    ///
    /// # Errors
    ///
    /// Fails if the kernel is structurally invalid or the launch exceeds
    /// hardware limits.
    pub fn new(
        machine: &'a Machine,
        kernel: &'a Kernel,
        launch: LaunchConfig,
    ) -> Result<FunctionalSim<'a>, SimError> {
        kernel.validate()?;
        launch.check(machine).map_err(SimError::LaunchTooLarge)?;
        if kernel.resources.smem_per_block > machine.smem_per_sm {
            return Err(SimError::LaunchTooLarge(format!(
                "{} B shared memory exceeds the {} B per-SM arena",
                kernel.resources.smem_per_block, machine.smem_per_sm
            )));
        }
        Ok(FunctionalSim {
            machine,
            kernel,
            launch,
            params: Vec::new(),
            region_defs: Vec::new(),
            fuel: 20_000_000_000,
            collect_trace: false,
            num_threads: 1,
            cfg: Cfg::build(&kernel.instrs),
            bank_cfg: BankConfig {
                banks: machine.smem_banks,
                width: machine.smem_bank_width,
                half_warp: machine.half_warp as usize,
            },
            coalesce_cfgs: GRANULARITIES.map(CoalesceConfig::with_min_segment),
        })
    }

    /// Set the kernel parameter words.
    pub fn set_params(&mut self, params: &[u32]) -> &mut Self {
        self.params = params.to_vec();
        self
    }

    /// Name a global address range for traffic attribution (paper Figure
    /// 11a separates matrix, column-index, and vector bytes).
    pub fn add_region(&mut self, name: impl Into<String>, base: u64, len: u64) -> &mut Self {
        self.region_defs.push((name.into(), base, len, false));
        self
    }

    /// Like [`FunctionalSim::add_region`], but loads from this range go
    /// through the texture cache in the timing simulator.
    pub fn add_texture_region(
        &mut self,
        name: impl Into<String>,
        base: u64,
        len: u64,
    ) -> &mut Self {
        self.region_defs.push((name.into(), base, len, true));
        self
    }

    /// Limit the total warp-instructions executed (runaway-loop guard).
    pub fn set_fuel(&mut self, fuel: u64) -> &mut Self {
        self.fuel = fuel;
        self
    }

    /// Record per-warp traces for the timing simulator.
    pub fn collect_traces(&mut self, yes: bool) -> &mut Self {
        self.collect_trace = yes;
        self
    }

    /// Shard the grid's blocks across `n` worker threads in
    /// [`FunctionalSim::run`] (the `par` knob). `1` — the default — is the
    /// plain sequential path; `0` means "auto": one worker per available
    /// CPU core. Output is bit-identical for every thread count; see
    /// [`crate::engine`] for the sharding/merge contract.
    pub fn set_num_threads(&mut self, n: usize) -> &mut Self {
        self.num_threads = n;
        self
    }

    /// [`set_num_threads`](FunctionalSim::set_num_threads) via the shared
    /// [`Threads`](crate::engine::Threads) selector. The simulator itself
    /// defaults to the sequential walk (the deterministic low-level
    /// baseline, including fuel accounting); the options layers above
    /// (`CaseOpts`, `MeasureOpts`, `gpa-service`) default to auto.
    pub fn set_threads(&mut self, threads: crate::engine::Threads) -> &mut Self {
        self.set_num_threads(threads.raw())
    }

    /// Configured worker-thread count (`0` = auto).
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// The launch shape being simulated.
    pub fn launch(&self) -> &LaunchConfig {
        &self.launch
    }

    /// Whether per-warp traces are being recorded.
    pub fn is_collecting_traces(&self) -> bool {
        self.collect_trace
    }

    /// Configured fuel budget (shared by a whole sequential run; applied
    /// per shard by the parallel engine).
    pub(crate) fn fuel_budget(&self) -> u64 {
        self.fuel
    }

    /// Execute every block of the grid, in block-id order.
    ///
    /// With the default single worker thread ([`FunctionalSim::set_num_threads`])
    /// blocks run sequentially on the calling thread; with more, the
    /// [`crate::engine::SimEngine`] shards blocks across workers and merges
    /// the results into the same (bit-identical) output. Blocks must be
    /// independent, as in a real grid launch: a block that reads global
    /// memory written by a lower-id block of the same launch observes the
    /// pre-launch contents under the parallel engine.
    ///
    /// # Errors
    ///
    /// Propagates the first (lowest-block-id) [`SimError`] (out-of-bounds
    /// access, divergent barrier, fuel exhaustion, …). The fuel budget
    /// covers the whole grid in a sequential run but each shard separately
    /// in a parallel one, so only fuel-exhaustion behaviour may differ
    /// between thread counts.
    pub fn run(&self, gmem: &mut GlobalMemory) -> Result<RunOutput, SimError> {
        let _span = gpa_telemetry::PhaseSpan::start(gpa_telemetry::phase::FUNCTIONAL_SIM);
        crate::engine::SimEngine::new(self.num_threads).run(self, gmem)
    }

    /// Execute a single block (used by the timing simulator's lazy trace
    /// sources). Statistics accumulate into `stats`; `stats.blocks` is
    /// *not* advanced.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`].
    pub fn run_block(
        &self,
        gmem: &mut GlobalMemory,
        block: u32,
        stats: &mut DynamicStats,
    ) -> Result<Option<BlockTrace>, SimError> {
        let mut fuel = self.fuel;
        self.exec_block(gmem, block, stats, &mut fuel)
    }

    /// Empty statistics with region definitions installed.
    pub fn fresh_stats(&self) -> DynamicStats {
        DynamicStats {
            stages: Vec::new(),
            regions: self
                .region_defs
                .iter()
                .map(|(name, base, len, texture)| RegionStats {
                    name: name.clone(),
                    base: *base,
                    len: *len,
                    texture: *texture,
                    gmem: Default::default(),
                    requested_bytes: 0,
                })
                .collect(),
            blocks: 0,
            warps_per_block: self.launch.warps_per_block(self.machine),
            threads_per_block: self.launch.threads_per_block(),
        }
    }

    pub(crate) fn exec_block(
        &self,
        gmem: &mut GlobalMemory,
        block: u32,
        stats: &mut DynamicStats,
        fuel: &mut u64,
    ) -> Result<Option<BlockTrace>, SimError> {
        let threads = self.launch.threads_per_block();
        let nwarps = threads.div_ceil(WARP as u32) as usize;
        let mut smem = vec![0u8; self.kernel.resources.smem_per_block as usize];

        let mut warps: Vec<WarpState> = (0..nwarps)
            .map(|w| WarpState::new(w as u32, threads))
            .collect();
        if self.collect_trace {
            // Pooled buffers: repeated traced runs (a serving process, a
            // calibration sweep) grow each warp's trace once and then
            // recycle the capacity instead of reallocating per block.
            for w in &mut warps {
                w.trace = crate::trace_pool::take();
            }
        }

        loop {
            let mut all_done = true;
            for w in &mut warps {
                if !w.done && !w.at_barrier {
                    self.run_warp(w, block, gmem, &mut smem, stats, fuel)?;
                }
                all_done &= w.done;
            }
            if all_done {
                break;
            }
            // Everyone is done or parked at a barrier: release. Exited
            // warps do not participate (GT200 barrier semantics).
            for w in &mut warps {
                w.at_barrier = false;
            }
        }

        if self.collect_trace {
            Ok(Some(BlockTrace {
                warps: warps.into_iter().map(|w| w.trace).collect(),
            }))
        } else {
            Ok(None)
        }
    }

    /// Run one warp until it parks at a barrier or exits.
    fn run_warp(
        &self,
        w: &mut WarpState,
        block: u32,
        gmem: &mut GlobalMemory,
        smem: &mut [u8],
        stats: &mut DynamicStats,
        fuel: &mut u64,
    ) -> Result<(), SimError> {
        loop {
            // Reconvergence / dead-mask unwinding.
            loop {
                if w.mask == 0 {
                    match w.stack.last_mut() {
                        Some(top) => {
                            if let Some((opc, omask)) = top.other.take() {
                                w.pc = opc;
                                w.mask = omask & !w.exited;
                            } else {
                                w.mask = top.merged & !w.exited;
                                w.pc = top.reconv;
                                w.stack.pop();
                            }
                            continue;
                        }
                        None => {
                            w.done = true;
                            return Ok(());
                        }
                    }
                }
                match w.stack.last_mut() {
                    Some(top) if w.pc == top.reconv => {
                        if let Some((opc, omask)) = top.other.take() {
                            w.pc = opc;
                            w.mask = omask & !w.exited;
                        } else {
                            w.mask = top.merged & !w.exited;
                            w.stack.pop();
                        }
                    }
                    _ => break,
                }
            }

            if *fuel == 0 {
                return Err(SimError::FuelExhausted);
            }
            *fuel -= 1;

            let pc = w.pc;
            let ins = &self.kernel.instrs[pc];
            let exec_mask = self.guard_mask(w, ins);

            match ins.op {
                Op::Bar => {
                    if !w.stack.is_empty() {
                        return Err(SimError::DivergentBarrier { pc });
                    }
                    let stage = w.stage;
                    self.stage_mut(stats, stage).barriers += 1;
                    self.count_issue(stats, w, ins);
                    if self.collect_trace {
                        w.trace.push(bar_entry());
                    }
                    w.stage += 1;
                    w.pc += 1;
                    w.at_barrier = true;
                    return Ok(());
                }
                Op::Exit => {
                    self.count_issue(stats, w, ins);
                    w.exited |= exec_mask;
                    w.mask &= !exec_mask;
                    if ins.guard.is_none() {
                        // Unguarded exit retires the whole active arm.
                        w.mask = 0;
                    }
                    if w.mask != 0 {
                        w.pc += 1;
                    }
                    continue;
                }
                Op::Bra { target } => {
                    self.count_issue(stats, w, ins);
                    if self.collect_trace {
                        w.trace.push(self.alu_entry(ins));
                    }
                    let taken = exec_mask;
                    let fall = w.mask & !exec_mask;
                    if ins.guard.is_none() || fall == 0 {
                        if taken == 0 {
                            w.pc += 1;
                        } else {
                            w.pc = target as usize;
                        }
                    } else if taken == 0 {
                        w.pc += 1;
                    } else {
                        // Divergence: run the taken arm first, park the
                        // fall-through arm, reconverge at the ipdom.
                        let reconv = self.cfg.reconvergence_pc(pc).unwrap_or(NO_RECONV);
                        w.stack.push(Frame {
                            reconv,
                            other: Some((pc + 1, fall)),
                            merged: w.mask,
                        });
                        w.pc = target as usize;
                        w.mask = taken;
                    }
                    continue;
                }
                _ => {}
            }

            // Non-control instruction.
            self.exec_datapath(w, ins, exec_mask, block, gmem, smem, stats)?;
            w.pc += 1;
        }
    }

    /// Lanes of `w.mask` whose guard predicate passes.
    fn guard_mask(&self, w: &WarpState, ins: &Instruction) -> u32 {
        match ins.guard {
            None => w.mask,
            Some(g) => {
                let mut m = 0u32;
                for lane in 0..WARP {
                    if w.mask & (1 << lane) != 0 {
                        let v = w.pred(lane, g.pred.0);
                        if v != g.negate {
                            m |= 1 << lane;
                        }
                    }
                }
                m
            }
        }
    }

    fn stage_mut<'s>(&self, stats: &'s mut DynamicStats, stage: usize) -> &'s mut StageStats {
        if stats.stages.len() <= stage {
            stats.stages.resize(stage + 1, StageStats::default());
        }
        &mut stats.stages[stage]
    }

    /// Count an issued warp-instruction (issued even when fully masked).
    fn count_issue(&self, stats: &mut DynamicStats, w: &mut WarpState, ins: &Instruction) {
        let stage = w.stage;
        let class = ins.op.class();
        let s = self.stage_mut(stats, stage);
        s.instr_by_class[class.index()] += 1;
        if matches!(ins.op, Op::FMad { .. }) {
            s.fmad += 1;
        }
        if w.counted_any != Some(stage) {
            w.counted_any = Some(stage);
            s.warps_any += 1;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_datapath(
        &self,
        w: &mut WarpState,
        ins: &Instruction,
        exec_mask: u32,
        block: u32,
        gmem: &mut GlobalMemory,
        smem: &mut [u8],
        stats: &mut DynamicStats,
    ) -> Result<(), SimError> {
        let pc = w.pc;
        let stage = w.stage;
        self.count_issue(stats, w, ins);

        // Per-op FLOP weight (counted per active lane).
        let lane_flops = match ins.op {
            Op::FAdd { .. } | Op::FMul { .. } | Op::DAdd { .. } | Op::DMul { .. } => 1u64,
            Op::FMad { .. } | Op::DFma { .. } => 2,
            Op::Rcp { .. }
            | Op::Rsq { .. }
            | Op::Sin { .. }
            | Op::Cos { .. }
            | Op::Lg2 { .. }
            | Op::Ex2 { .. } => 1,
            _ => 0,
        };
        if lane_flops > 0 {
            self.stage_mut(stats, stage).flops += lane_flops * u64::from(exec_mask.count_ones());
        }

        // Shared-memory traffic: explicit ld/st or an ALU shared operand.
        let mut smem_half_txns_entry: u16 = 0;
        let is_smem_ldst = matches!(ins.op, Op::LdShared { .. } | Op::StShared { .. });
        let smem_access: Option<(MemAddr, u32)> = match ins.op {
            Op::LdShared { addr, width, .. } | Op::StShared { addr, width, .. } => {
                Some((addr, width.bytes()))
            }
            _ => ins.op.smem_operand().map(|a| (a, 4)),
        };
        // ALU shared operands are addressed, checked, and loaded here,
        // once per lane, and the word values handed to the semantic step
        // below — these ops only read shared memory, so preloading is
        // order-equivalent to fetching during execution.
        let mut smem_pre = SmemPre {
            addr: None,
            vals: [0u32; WARP],
        };
        if let Some((addr, width)) = smem_access {
            if exec_mask != 0 {
                let mut half_txns = 0u32;
                let mut half_accesses = 0u32;
                // Wide shared accesses proceed in 4-byte phases.
                for phase in 0..(width / 4) {
                    let mut addrs = [None::<u64>; WARP];
                    for (lane, slot) in addrs.iter_mut().enumerate() {
                        if exec_mask & (1 << lane) != 0 {
                            let a = self.smem_lane_addr(w, lane, addr)? + i64::from(phase * 4);
                            self.check_smem(a, 4, smem.len(), pc)?;
                            *slot = Some(a as u64);
                            if !is_smem_ldst {
                                let i = a as usize;
                                smem_pre.vals[lane] =
                                    u32::from_le_bytes(smem[i..i + 4].try_into().unwrap());
                            }
                        }
                    }
                    for hw_chunk in addrs.chunks(self.bank_cfg.half_warp) {
                        let d = bank_transactions(hw_chunk, self.bank_cfg);
                        half_txns += d;
                        if d > 0 {
                            half_accesses += 1;
                        }
                    }
                }
                if !is_smem_ldst {
                    smem_pre.addr = Some(addr);
                }
                let s = self.stage_mut(stats, stage);
                s.smem_half_txns += u64::from(half_txns);
                s.smem_half_accesses += u64::from(half_accesses);
                s.smem_instrs += 1;
                if w.counted_smem != Some(stage) {
                    w.counted_smem = Some(stage);
                    s.warps_smem += 1;
                }
                smem_half_txns_entry = half_txns.min(u32::from(u16::MAX)) as u16;
            }
        }

        // Shared-memory atomic traffic: lanes of a half-warp hitting the
        // same word (or the same bank) serialize lane by lane — there is
        // no broadcast for a read-modify-write. The serialized weight
        // occupies the shared-memory pipeline (folded into the smem
        // counters and the trace entry) and is additionally attributed to
        // the atomic counters so the analysis can tell contention apart
        // from ordinary bank conflicts.
        if ins.op.is_atomic() && exec_mask != 0 {
            let addr = match ins.op {
                Op::AtomSharedAdd { addr, .. } | Op::AtomSharedCas { addr, .. } => addr,
                _ => unreachable!("is_atomic covers exactly the atomic ops"),
            };
            let mut addrs = [None::<u64>; WARP];
            for (lane, slot) in addrs.iter_mut().enumerate() {
                if exec_mask & (1 << lane) != 0 {
                    let a = self.smem_lane_addr(w, lane, addr)?;
                    self.check_smem(a, 4, smem.len(), pc)?;
                    *slot = Some(a as u64);
                }
            }
            let mut half_txns = 0u32;
            let mut half_accesses = 0u32;
            for hw_chunk in addrs.chunks(self.bank_cfg.half_warp) {
                let d = atomic_bank_transactions(hw_chunk, self.bank_cfg);
                half_txns += d;
                if d > 0 {
                    half_accesses += 1;
                }
            }
            let s = self.stage_mut(stats, stage);
            s.smem_half_txns += u64::from(half_txns);
            s.smem_half_accesses += u64::from(half_accesses);
            s.smem_instrs += 1;
            s.atomic_half_txns += u64::from(half_txns);
            s.atomic_half_accesses += u64::from(half_accesses);
            s.atomic_instrs += 1;
            if w.counted_smem != Some(stage) {
                w.counted_smem = Some(stage);
                s.warps_smem += 1;
            }
            if w.counted_atomic != Some(stage) {
                w.counted_atomic = Some(stage);
                s.warps_atomic += 1;
            }
            smem_half_txns_entry = half_txns.min(u32::from(u16::MAX)) as u16;
        }

        // Global-memory traffic.
        let mut gmem_txns: Option<Box<[gpa_mem::coalesce::Transaction]>> = None;
        if let Op::LdGlobal { addr, width, .. } | Op::StGlobal { addr, width, .. } = ins.op {
            if exec_mask != 0 {
                let mut accesses = [None::<(u64, u32)>; WARP];
                let mut requested = 0u64;
                for (lane, slot) in accesses.iter_mut().enumerate() {
                    if exec_mask & (1 << lane) != 0 {
                        let a = self.gmem_lane_addr(w, lane, addr);
                        let a = u64::try_from(a).map_err(|_| SimError::GlobalOutOfBounds {
                            addr: a as u64,
                            len: width.bytes(),
                            pc,
                        })?;
                        if a % u64::from(width.bytes()) != 0 {
                            return Err(SimError::Misaligned {
                                addr: a,
                                len: width.bytes(),
                                pc,
                            });
                        }
                        *slot = Some((a, width.bytes()));
                        requested += u64::from(width.bytes());
                    }
                }
                // The GT200-granularity transaction list is only kept for
                // the timing trace; the statistics fold in-place.
                let mut all_txs = Vec::new();
                let collect_txs = self.collect_trace;
                for (g, cfg) in self.coalesce_cfgs.iter().enumerate() {
                    for hw_chunk in accesses.chunks(self.machine.half_warp as usize) {
                        coalesce_half_warp_with(hw_chunk, *cfg, &mut |t| {
                            let st = self.stage_mut(stats, stage);
                            st.gmem[g].transactions += 1;
                            st.gmem[g].bytes += u64::from(t.size);
                            if let Some(r) = stats.regions.iter_mut().find(|r| r.contains(t.base)) {
                                r.gmem[g].transactions += 1;
                                r.gmem[g].bytes += u64::from(t.size);
                            }
                            if g == GRAN_GT200 && collect_txs {
                                all_txs.push(t);
                            }
                        });
                    }
                }
                for (a, l) in accesses.iter().flatten() {
                    if let Some(r) = stats.regions.iter_mut().find(|r| r.contains(*a)) {
                        r.requested_bytes += u64::from(*l);
                    }
                }
                let st = self.stage_mut(stats, stage);
                st.gmem_requested_bytes += requested;
                st.gmem_instrs += 1;
                gmem_txns = Some(all_txs.into_boxed_slice());
            }
        }

        // Semantics.
        self.apply_semantics(w, ins, exec_mask, block, gmem, smem, pc, &smem_pre)?;

        // Trace.
        if self.collect_trace {
            let mut e = self.alu_entry(ins);
            e.smem_half_txns = smem_half_txns_entry;
            if smem_access.is_some() || ins.op.is_atomic() {
                e.dst_lat = DstLatency::Smem;
            }
            if let Op::LdGlobal { .. } = ins.op {
                e.dst_lat = DstLatency::Gmem;
                e.gmem_load = true;
            }
            e.gmem = gmem_txns;
            w.trace.push(e);
        }
        Ok(())
    }

    /// Byte offset into shared memory for one lane (bounds unchecked).
    fn smem_lane_addr(&self, w: &WarpState, lane: usize, addr: MemAddr) -> Result<i64, SimError> {
        let base = match addr.base {
            Some(r) => i64::from(w.reg(lane, r.0) as i32),
            None => 0,
        };
        Ok(base + i64::from(addr.offset))
    }

    fn check_smem(&self, addr: i64, len: u32, smem_len: usize, pc: usize) -> Result<(), SimError> {
        if addr < 0 || (addr + i64::from(len)) as usize > smem_len {
            return Err(SimError::SharedOutOfBounds {
                offset: addr,
                len,
                pc,
            });
        }
        if addr % i64::from(len) != 0 {
            return Err(SimError::Misaligned {
                addr: addr as u64,
                len,
                pc,
            });
        }
        Ok(())
    }

    /// Device address for one lane of a global access.
    fn gmem_lane_addr(&self, w: &WarpState, lane: usize, addr: MemAddr) -> i64 {
        let base = match addr.base {
            Some(r) => i64::from(w.reg(lane, r.0)),
            None => 0,
        };
        base + i64::from(addr.offset)
    }

    /// Execute one warp-instruction's semantics for every active lane.
    ///
    /// The op is matched **once per warp** and each arm loops over the
    /// active lanes — this (not the arithmetic) is the interpreter's hot
    /// shape: per-lane dispatch costs more than the lane's work.
    #[allow(clippy::too_many_arguments)]
    fn apply_semantics(
        &self,
        w: &mut WarpState,
        ins: &Instruction,
        exec_mask: u32,
        block: u32,
        gmem: &mut GlobalMemory,
        smem: &mut [u8],
        pc: usize,
        pre: &SmemPre,
    ) -> Result<(), SimError> {
        use Op::*;

        macro_rules! lanes {
            (|$lane:ident| $body:expr) => {
                for $lane in 0..WARP {
                    if exec_mask & (1 << $lane) != 0 {
                        $body;
                    }
                }
            };
        }
        macro_rules! get {
            ($lane:ident, $s:expr) => {
                self.fetch(w, $lane, $s, smem, pc, pre)?
            };
        }
        macro_rules! set {
            ($lane:ident, $d:expr, $v:expr) => {{
                let v = $v;
                w.set_reg($lane, $d.0, v);
            }};
        }
        let f = f32::from_bits;
        let fb = |x: f32| x.to_bits();

        match ins.op {
            FMul { d, a, b } => lanes!(|l| set!(l, d, fb(f(get!(l, a)) * f(get!(l, b))))),
            FAdd { d, a, b } => lanes!(|l| set!(l, d, fb(f(get!(l, a)) + f(get!(l, b))))),
            FMad { d, a, b, c } => {
                // Full-warp vector path: resolve each operand into a
                // contiguous row, fuse all 32 lanes at once.
                if exec_mask == u32::MAX && fma::available() {
                    let mut va = [0u32; WARP];
                    let mut vb = [0u32; WARP];
                    let mut vc = [0u32; WARP];
                    if self.resolve_full(w, a, pre, &mut va)
                        && self.resolve_full(w, b, pre, &mut vb)
                        && self.resolve_full(w, c, pre, &mut vc)
                    {
                        // SAFETY: `fma::available()` confirmed the FMA
                        // target feature at runtime.
                        unsafe { fma::fmad_warp(&va, &vb, &vc, w.reg_row_mut(d.0)) };
                        return Ok(());
                    }
                }
                if fma::available() {
                    lanes!(|l| {
                        let (va, vb, vc) = (f(get!(l, a)), f(get!(l, b)), f(get!(l, c)));
                        // SAFETY: `fma::available()` confirmed the FMA
                        // target feature at runtime.
                        set!(l, d, fb(unsafe { fma::f32_fma(va, vb, vc) }));
                    })
                } else {
                    lanes!(|l| set!(
                        l,
                        d,
                        fb(f(get!(l, a)).mul_add(f(get!(l, b)), f(get!(l, c))))
                    ))
                }
            }
            IAdd { d, a, b } => {
                lanes!(|l| set!(
                    l,
                    d,
                    (get!(l, a) as i32).wrapping_add(get!(l, b) as i32) as u32
                ))
            }
            ISub { d, a, b } => {
                lanes!(|l| set!(
                    l,
                    d,
                    (get!(l, a) as i32).wrapping_sub(get!(l, b) as i32) as u32
                ))
            }
            IMul { d, a, b } => {
                lanes!(|l| set!(
                    l,
                    d,
                    (get!(l, a) as i32).wrapping_mul(get!(l, b) as i32) as u32
                ))
            }
            IMad { d, a, b, c } => {
                lanes!(|l| set!(
                    l,
                    d,
                    (get!(l, a) as i32)
                        .wrapping_mul(get!(l, b) as i32)
                        .wrapping_add(get!(l, c) as i32) as u32
                ))
            }
            IMin { d, a, b } => {
                lanes!(|l| set!(l, d, (get!(l, a) as i32).min(get!(l, b) as i32) as u32))
            }
            IMax { d, a, b } => {
                lanes!(|l| set!(l, d, (get!(l, a) as i32).max(get!(l, b) as i32) as u32))
            }
            Shl { d, a, b } => lanes!(|l| set!(l, d, get!(l, a) << (get!(l, b) & 31))),
            Shr { d, a, b } => lanes!(|l| set!(l, d, get!(l, a) >> (get!(l, b) & 31))),
            And { d, a, b } => lanes!(|l| set!(l, d, get!(l, a) & get!(l, b))),
            Or { d, a, b } => lanes!(|l| set!(l, d, get!(l, a) | get!(l, b))),
            Xor { d, a, b } => lanes!(|l| set!(l, d, get!(l, a) ^ get!(l, b))),
            Mov { d, a } => lanes!(|l| set!(l, d, get!(l, a))),
            MovImm { d, imm } => lanes!(|l| set!(l, d, imm)),
            S2R { d, sr } => lanes!(|l| set!(l, d, self.special_value(w, l, block, sr))),
            SetP { p, cmp, ty, a, b } => {
                lanes!(|l| {
                    let va = get!(l, a);
                    let vb = get!(l, b);
                    let r = match ty {
                        NumTy::S32 => cmp.eval_i32(va as i32, vb as i32),
                        NumTy::F32 => cmp.eval_f32(f(va), f(vb)),
                    };
                    w.set_pred(l, p.0, r);
                })
            }
            Sel { d, p, a, b } => {
                lanes!(|l| {
                    let v = if w.pred(l, p.0) {
                        get!(l, a)
                    } else {
                        get!(l, b)
                    };
                    set!(l, d, v);
                })
            }
            I2F { d, a } => lanes!(|l| set!(l, d, fb(get!(l, a) as i32 as f32))),
            F2I { d, a } => lanes!(|l| set!(l, d, (f(get!(l, a)) as i32) as u32)),
            Rcp { d, a } => lanes!(|l| set!(l, d, fb(1.0 / f(get!(l, a))))),
            Rsq { d, a } => lanes!(|l| set!(l, d, fb(1.0 / f(get!(l, a)).sqrt()))),
            Sin { d, a } => lanes!(|l| set!(l, d, fb(f(get!(l, a)).sin()))),
            Cos { d, a } => lanes!(|l| set!(l, d, fb(f(get!(l, a)).cos()))),
            Lg2 { d, a } => lanes!(|l| set!(l, d, fb(f(get!(l, a)).log2()))),
            Ex2 { d, a } => lanes!(|l| set!(l, d, fb(f(get!(l, a)).exp2()))),
            DAdd { d, a, b } => {
                lanes!(|l| {
                    let v = w.read_f64(l, a) + w.read_f64(l, b);
                    w.write_f64(l, d, v);
                })
            }
            DMul { d, a, b } => {
                lanes!(|l| {
                    let v = w.read_f64(l, a) * w.read_f64(l, b);
                    w.write_f64(l, d, v);
                })
            }
            DFma { d, a, b, c } => {
                if fma::available() {
                    lanes!(|l| {
                        let (va, vb, vc) = (w.read_f64(l, a), w.read_f64(l, b), w.read_f64(l, c));
                        // SAFETY: `fma::available()` confirmed the FMA
                        // target feature at runtime.
                        let v = unsafe { fma::f64_fma(va, vb, vc) };
                        w.write_f64(l, d, v);
                    })
                } else {
                    lanes!(|l| {
                        let v = w.read_f64(l, a).mul_add(w.read_f64(l, b), w.read_f64(l, c));
                        w.write_f64(l, d, v);
                    })
                }
            }
            LdShared { d, addr, width } => {
                lanes!(|l| {
                    let a = self.smem_lane_addr(w, l, addr)?;
                    self.check_smem(a, width.bytes(), smem.len(), pc)?;
                    for k in 0..width.regs() {
                        let i = a as usize + usize::from(k) * 4;
                        let v = u32::from_le_bytes(smem[i..i + 4].try_into().unwrap());
                        w.set_reg(l, d.0 + k, v);
                    }
                })
            }
            StShared { addr, src, width } => {
                lanes!(|l| {
                    let a = self.smem_lane_addr(w, l, addr)?;
                    self.check_smem(a, width.bytes(), smem.len(), pc)?;
                    for k in 0..width.regs() {
                        let i = a as usize + usize::from(k) * 4;
                        let v = w.reg(l, src.0 + k);
                        smem[i..i + 4].copy_from_slice(&v.to_le_bytes());
                    }
                })
            }
            LdGlobal { d, addr, width } => {
                lanes!(|l| {
                    let a = self.gmem_lane_addr(w, l, addr) as u64;
                    for k in 0..width.regs() {
                        let v = gmem.read_u32(a + u64::from(k) * 4).map_err(|_| {
                            SimError::GlobalOutOfBounds {
                                addr: a,
                                len: width.bytes(),
                                pc,
                            }
                        })?;
                        w.set_reg(l, d.0 + k, v);
                    }
                })
            }
            StGlobal { addr, src, width } => {
                lanes!(|l| {
                    let a = self.gmem_lane_addr(w, l, addr) as u64;
                    for k in 0..width.regs() {
                        let v = w.reg(l, src.0 + k);
                        gmem.write_u32(a + u64::from(k) * 4, v).map_err(|_| {
                            SimError::GlobalOutOfBounds {
                                addr: a,
                                len: width.bytes(),
                                pc,
                            }
                        })?;
                    }
                })
            }
            AtomSharedAdd { d, addr, src } => {
                // Same-word lanes serialize in lane order, so the returned
                // old values are deterministic.
                lanes!(|l| {
                    let a = self.smem_lane_addr(w, l, addr)?;
                    self.check_smem(a, 4, smem.len(), pc)?;
                    let i = a as usize;
                    let old = u32::from_le_bytes(smem[i..i + 4].try_into().unwrap());
                    let add = w.reg(l, src.0);
                    let new = (old as i32).wrapping_add(add as i32) as u32;
                    smem[i..i + 4].copy_from_slice(&new.to_le_bytes());
                    set!(l, d, old);
                })
            }
            AtomSharedCas { d, addr, cmp, src } => {
                lanes!(|l| {
                    let a = self.smem_lane_addr(w, l, addr)?;
                    self.check_smem(a, 4, smem.len(), pc)?;
                    let i = a as usize;
                    let old = u32::from_le_bytes(smem[i..i + 4].try_into().unwrap());
                    if old == w.reg(l, cmp.0) {
                        let v = w.reg(l, src.0);
                        smem[i..i + 4].copy_from_slice(&v.to_le_bytes());
                    }
                    set!(l, d, old);
                })
            }
            LdParam { d, offset } => {
                if exec_mask != 0 {
                    let idx = usize::from(offset) / 4;
                    let v = *self
                        .params
                        .get(idx)
                        .ok_or(SimError::ParamOutOfBounds { offset })?;
                    lanes!(|l| set!(l, d, v));
                }
            }
            Bar | Bra { .. } | Exit | Nop => {}
        }
        Ok(())
    }

    /// Resolve one operand for **all 32 lanes** of a fully-active warp
    /// into `out`. Returns `false` (leaving `out` unspecified) when the
    /// operand is a shared-memory word that was not preloaded — the
    /// caller falls back to the per-lane path.
    #[inline]
    fn resolve_full(&self, w: &WarpState, s: Src, pre: &SmemPre, out: &mut [u32; WARP]) -> bool {
        match s {
            Src::Reg(r) => {
                out.copy_from_slice(w.reg_row(r.0));
                true
            }
            Src::Imm(v) => {
                out.fill(v as u32);
                true
            }
            Src::SMem(a) => {
                if pre.addr == Some(a) {
                    out.copy_from_slice(&pre.vals);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Fetch one operand for one lane. Shared-memory operands normally
    /// come pre-loaded from the accounting pass (`pre`); the fallback
    /// path reads shared memory directly.
    #[inline(always)]
    fn fetch(
        &self,
        w: &WarpState,
        lane: usize,
        s: Src,
        smem: &[u8],
        pc: usize,
        pre: &SmemPre,
    ) -> Result<u32, SimError> {
        match s {
            Src::Reg(r) => Ok(w.reg(lane, r.0)),
            Src::Imm(v) => Ok(v as u32),
            Src::SMem(a) => {
                if pre.addr == Some(a) {
                    return Ok(pre.vals[lane]);
                }
                let addr = self.smem_lane_addr(w, lane, a)?;
                self.check_smem(addr, 4, smem.len(), pc)?;
                let i = addr as usize;
                Ok(u32::from_le_bytes(smem[i..i + 4].try_into().unwrap()))
            }
        }
    }

    fn special_value(&self, w: &WarpState, lane: usize, block: u32, sr: SpecialReg) -> u32 {
        let tid = w.first_thread + lane as u32;
        let (tx, ty) = self.launch.thread_coords(tid);
        let (bx, by) = self.launch.block_coords(block);
        match sr {
            SpecialReg::TidX => tx,
            SpecialReg::TidY => ty,
            SpecialReg::CtaIdX => bx,
            SpecialReg::CtaIdY => by,
            SpecialReg::NTidX => self.launch.block.0,
            SpecialReg::NTidY => self.launch.block.1,
            SpecialReg::NCtaIdX => self.launch.grid.0,
            SpecialReg::NCtaIdY => self.launch.grid.1,
        }
    }

    /// Trace skeleton for an instruction: class, dependencies, destination.
    fn alu_entry(&self, ins: &Instruction) -> TraceEntry {
        let mut srcs = [0xFFu8; 8];
        let mut n = 0usize;
        let mut push = |id: u8| {
            if n < srcs.len() && !srcs[..n].contains(&id) {
                srcs[n] = id;
                n += 1;
            }
        };
        for r in ins.op.src_regs() {
            push(r.0);
        }
        if let Some(g) = ins.guard {
            push(PRED_BASE + g.pred.0);
        }
        match ins.op {
            Op::Sel { p, .. } => push(PRED_BASE + p.0),
            Op::SetP { .. } => {}
            _ => {}
        }
        let (dst, dst_n) = match ins.op {
            Op::SetP { p, .. } => (PRED_BASE + p.0, 1),
            _ => match ins.op.dst() {
                Some((r, k)) => (r.0, k),
                None => (0, 0),
            },
        };
        TraceEntry {
            class: ins.op.class(),
            dst,
            dst_n,
            srcs,
            nsrcs: n as u8,
            dst_lat: DstLatency::Alu,
            smem_half_txns: 0,
            gmem: None,
            gmem_load: false,
            bar: false,
        }
    }
}

fn bar_entry() -> TraceEntry {
    TraceEntry {
        class: gpa_hw::InstrClass::TypeII,
        dst: 0,
        dst_n: 0,
        srcs: [0xFF; 8],
        nsrcs: 0,
        dst_lat: DstLatency::Alu,
        smem_half_txns: 0,
        gmem: None,
        gmem_load: false,
        bar: true,
    }
}

/// A divergence-stack frame.
#[derive(Debug, Clone)]
struct Frame {
    reconv: usize,
    other: Option<(usize, u32)>,
    merged: u32,
}

/// Pre-resolved shared-memory operand of an ALU instruction: the word
/// each lane would read, loaded once during the bank-accounting pass.
struct SmemPre {
    /// The operand this covers, or `None` when nothing was preloaded.
    addr: Option<MemAddr>,
    /// Per-lane word values (valid for lanes in the exec mask).
    vals: [u32; WARP],
}

/// Architectural registers per lane (the GT200 register-file slice a
/// kernel may address).
const LANE_REGS: usize = 128;
/// Predicate registers per lane.
const LANE_PREDS: usize = 4;

/// Execution state of one warp. The register file is one flat slab in
/// **register-major** order (`reg * WARP + lane`) rather than per-lane
/// boxes: one architectural register across all 32 lanes is contiguous,
/// which is both the locality the per-lane interpreter loop wants and
/// the layout the vectorized full-warp fast paths require.
#[derive(Debug)]
struct WarpState {
    pc: usize,
    mask: u32,
    exited: u32,
    stack: Vec<Frame>,
    at_barrier: bool,
    done: bool,
    stage: usize,
    first_thread: u32,
    regs: Box<[u32; WARP * LANE_REGS]>,
    preds: [bool; WARP * LANE_PREDS],
    trace: Vec<TraceEntry>,
    counted_any: Option<usize>,
    counted_smem: Option<usize>,
    counted_atomic: Option<usize>,
}

impl WarpState {
    fn new(warp_idx: u32, block_threads: u32) -> WarpState {
        let first_thread = warp_idx * WARP as u32;
        let live = (block_threads - first_thread).min(WARP as u32);
        let mask = if live >= 32 {
            u32::MAX
        } else {
            (1u32 << live) - 1
        };
        WarpState {
            pc: 0,
            mask,
            exited: 0,
            stack: Vec::new(),
            at_barrier: false,
            done: false,
            stage: 0,
            first_thread,
            regs: vec![0u32; WARP * LANE_REGS]
                .into_boxed_slice()
                .try_into()
                .expect("fixed-size register slab"),
            preds: [false; WARP * LANE_PREDS],
            trace: Vec::new(),
            counted_any: None,
            counted_smem: None,
            counted_atomic: None,
        }
    }

    #[inline]
    fn reg(&self, lane: usize, r: u8) -> u32 {
        self.regs[r as usize * WARP + lane]
    }

    #[inline]
    fn set_reg(&mut self, lane: usize, r: u8, v: u32) {
        self.regs[r as usize * WARP + lane] = v;
    }

    /// One register across all 32 lanes.
    #[inline]
    fn reg_row(&self, r: u8) -> &[u32; WARP] {
        self.regs[r as usize * WARP..(r as usize + 1) * WARP]
            .try_into()
            .expect("warp-sized register row")
    }

    /// One register across all 32 lanes, mutably.
    #[inline]
    fn reg_row_mut(&mut self, r: u8) -> &mut [u32; WARP] {
        (&mut self.regs[r as usize * WARP..(r as usize + 1) * WARP])
            .try_into()
            .expect("warp-sized register row")
    }

    #[inline]
    fn pred(&self, lane: usize, p: u8) -> bool {
        self.preds[lane * LANE_PREDS + p as usize]
    }

    #[inline]
    fn set_pred(&mut self, lane: usize, p: u8, v: bool) {
        self.preds[lane * LANE_PREDS + p as usize] = v;
    }

    fn read_f64(&self, lane: usize, r: Reg) -> f64 {
        let lo = self.reg(lane, r.0);
        let hi = self.reg(lane, r.0 + 1);
        f64::from_bits(u64::from(lo) | (u64::from(hi) << 32))
    }

    fn write_f64(&mut self, lane: usize, r: Reg, v: f64) {
        let bits = v.to_bits();
        self.set_reg(lane, r.0, bits as u32);
        self.set_reg(lane, r.0 + 1, (bits >> 32) as u32);
    }
}

#[cfg(test)]
#[path = "func_tests.rs"]
mod func_tests;
