//! Dynamic statistics (the paper's "info extractor" inputs) and warp traces.

use gpa_hw::InstrClass;
use gpa_mem::coalesce::Transaction;

/// Global-memory transaction granularities the functional simulator
/// evaluates side by side: the real GT200 32-byte minimum plus the paper's
/// hypothetical 16-byte and 4-byte memory systems (Figure 11).
pub const GRANULARITIES: [u32; 3] = [32, 16, 4];

/// Index of the real GT200 granularity in [`GRANULARITIES`].
pub const GRAN_GT200: usize = 0;

/// Transaction count and bytes moved under one coalescing granularity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GmemGranStats {
    /// Hardware transactions issued.
    pub transactions: u64,
    /// Bytes moved (transaction sizes summed).
    pub bytes: u64,
}

/// Dynamic statistics for one synchronization stage (the intervals between
/// `bar.sync` instructions, paper §3).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageStats {
    /// Warp-level dynamic instruction counts per Table 1 class.
    pub instr_by_class: [u64; 4],
    /// Warp-level `mad.f32` count (the paper's "actual computation"
    /// instructions in the matmul/SpMV studies).
    pub fmad: u64,
    /// Floating-point operations actually executed (lane-level, masked
    /// lanes excluded).
    pub flops: u64,
    /// Shared-memory **half-warp transactions** after bank-conflict
    /// serialization. Divide by 2 for the paper's warp-equivalent unit
    /// ([`StageStats::smem_warp_equiv`]).
    pub smem_half_txns: u64,
    /// Half-warp transactions a conflict-free shared memory would need
    /// (the "no bank conflicts" series of paper Figure 7b).
    pub smem_half_accesses: u64,
    /// Warp-level instructions that touched shared memory.
    pub smem_instrs: u64,
    /// Half-warp transactions from shared-memory *atomics* after
    /// same-address/same-bank serialization. Also included in
    /// [`StageStats::smem_half_txns`] (atomics occupy the shared-memory
    /// pipeline); kept separately so the analysis can attribute
    /// serialization to contention rather than ordinary bank conflicts.
    pub atomic_half_txns: u64,
    /// Half-warp transactions a contention-free atomic unit would need
    /// (one per active half-warp — the privatized/padded ideal).
    pub atomic_half_accesses: u64,
    /// Warp-level atomic instructions.
    pub atomic_instrs: u64,
    /// Global-memory statistics per [`GRANULARITIES`] entry.
    pub gmem: [GmemGranStats; 3],
    /// Bytes the lanes actually asked for (coalescing-independent).
    pub gmem_requested_bytes: u64,
    /// Warp-level instructions that touched global memory.
    pub gmem_instrs: u64,
    /// Warp-level barrier arrivals ending this stage.
    pub barriers: u64,
    /// Warps (summed over blocks) that issued at least one instruction in
    /// this stage.
    pub warps_any: u64,
    /// Warps (summed over blocks) that issued at least one shared-memory
    /// access in this stage — the paper's per-step warp parallelism for the
    /// Figure 7a bandwidth lookup.
    pub warps_smem: u64,
    /// Warps (summed over blocks) that issued at least one shared-memory
    /// atomic in this stage.
    pub warps_atomic: u64,
}

impl StageStats {
    /// Total warp-level instructions.
    pub fn instr_total(&self) -> u64 {
        self.instr_by_class.iter().sum()
    }

    /// Count for one instruction class.
    pub fn instr(&self, class: InstrClass) -> u64 {
        self.instr_by_class[class.index()]
    }

    /// Shared-memory transactions in the paper's warp-equivalent unit
    /// (conflict-free full-warp access = 1.0).
    pub fn smem_warp_equiv(&self) -> f64 {
        self.smem_half_txns as f64 / 2.0
    }

    /// Conflict-free warp-equivalent transactions.
    pub fn smem_warp_equiv_no_conflicts(&self) -> f64 {
        self.smem_half_accesses as f64 / 2.0
    }

    /// Bank-conflict penalty: actual transactions over conflict-free
    /// transactions (1.0 = conflict-free).
    pub fn bank_conflict_factor(&self) -> f64 {
        if self.smem_half_accesses == 0 {
            1.0
        } else {
            self.smem_half_txns as f64 / self.smem_half_accesses as f64
        }
    }

    /// Shared-memory atomic transactions in the paper's warp-equivalent
    /// unit (contention-free full-warp atomic = 1.0).
    pub fn atomic_warp_equiv(&self) -> f64 {
        self.atomic_half_txns as f64 / 2.0
    }

    /// Atomic-contention penalty: serialized transactions over the
    /// contention-free count (1.0 = no same-word or same-bank collisions).
    pub fn atomic_contention_factor(&self) -> f64 {
        if self.atomic_half_accesses == 0 {
            1.0
        } else {
            self.atomic_half_txns as f64 / self.atomic_half_accesses as f64
        }
    }

    /// Coalescing efficiency under granularity index `g`: requested bytes
    /// over transferred bytes (1.0 = perfectly coalesced).
    pub fn coalesce_efficiency(&self, g: usize) -> f64 {
        if self.gmem[g].bytes == 0 {
            1.0
        } else {
            self.gmem_requested_bytes as f64 / self.gmem[g].bytes as f64
        }
    }

    /// Computational density: the fraction of issued instructions doing
    /// "actual computation" (MADs), paper §5.1/§5.3.
    pub fn computational_density(&self) -> f64 {
        let total = self.instr_total();
        if total == 0 {
            0.0
        } else {
            self.fmad as f64 / total as f64
        }
    }

    /// Accumulate another stage's counts into this one.
    ///
    /// This is the **cross-stage** combination used by
    /// [`DynamicStats::total`]: the per-step warp-parallelism gauges
    /// `warps_any`/`warps_smem` take the *maximum* (a program's peak
    /// parallelism, not a sum over its stages). To combine the same stage
    /// from disjoint block shards use [`StageStats::merge_blocks`].
    pub fn merge(&mut self, other: &StageStats) {
        self.add_counts(other);
        self.warps_any = self.warps_any.max(other.warps_any);
        self.warps_smem = self.warps_smem.max(other.warps_smem);
        self.warps_atomic = self.warps_atomic.max(other.warps_atomic);
    }

    /// Combine the same stage observed over **disjoint sets of blocks**
    /// (the parallel engine's shard merge): every field is additive,
    /// including `warps_any`/`warps_smem`, which are defined as warps
    /// *summed over blocks*.
    pub fn merge_blocks(&mut self, other: &StageStats) {
        self.add_counts(other);
        self.warps_any += other.warps_any;
        self.warps_smem += other.warps_smem;
        self.warps_atomic += other.warps_atomic;
    }

    fn add_counts(&mut self, other: &StageStats) {
        for i in 0..4 {
            self.instr_by_class[i] += other.instr_by_class[i];
        }
        self.fmad += other.fmad;
        self.flops += other.flops;
        self.smem_half_txns += other.smem_half_txns;
        self.smem_half_accesses += other.smem_half_accesses;
        self.smem_instrs += other.smem_instrs;
        self.atomic_half_txns += other.atomic_half_txns;
        self.atomic_half_accesses += other.atomic_half_accesses;
        self.atomic_instrs += other.atomic_instrs;
        for g in 0..3 {
            self.gmem[g].transactions += other.gmem[g].transactions;
            self.gmem[g].bytes += other.gmem[g].bytes;
        }
        self.gmem_requested_bytes += other.gmem_requested_bytes;
        self.gmem_instrs += other.gmem_instrs;
        self.barriers += other.barriers;
    }
}

/// A named global-memory address range for traffic attribution (the paper's
/// Figure 11a separates matrix-entry, column-index, and vector-entry
/// bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct RegionStats {
    /// Region name (e.g. `"vector"`).
    pub name: String,
    /// Device base address.
    pub base: u64,
    /// Region length in bytes.
    pub len: u64,
    /// Whether loads from this region go through the texture cache in the
    /// timing simulator.
    pub texture: bool,
    /// Traffic per [`GRANULARITIES`] entry.
    pub gmem: [GmemGranStats; 3],
    /// Bytes requested by lanes from this region.
    pub requested_bytes: u64,
}

impl RegionStats {
    /// Returns `true` if `addr` falls inside the region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.len
    }
}

/// All dynamic statistics of one launch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DynamicStats {
    /// Per-stage statistics, aggregated over blocks by stage index.
    pub stages: Vec<StageStats>,
    /// Per-region global traffic attribution.
    pub regions: Vec<RegionStats>,
    /// Blocks executed.
    pub blocks: u64,
    /// Warps per block.
    pub warps_per_block: u32,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl DynamicStats {
    /// Sum of all stages.
    pub fn total(&self) -> StageStats {
        let mut t = StageStats::default();
        for s in &self.stages {
            t.merge(s);
        }
        t
    }

    /// Total warps launched.
    pub fn total_warps(&self) -> u64 {
        self.blocks * u64::from(self.warps_per_block)
    }

    /// Fold the statistics of a **disjoint block shard** into this one
    /// (the parallel engine's deterministic merge): stages combine
    /// index-wise via [`StageStats::merge_blocks`], per-region traffic is
    /// summed, and `blocks` accumulates. Both sides must come from the
    /// same launch (same region definitions and block shape).
    ///
    /// # Panics
    ///
    /// Panics if the region lists disagree, which indicates the shards
    /// came from differently configured simulators.
    pub fn merge_shard(&mut self, other: &DynamicStats) {
        if self.stages.len() < other.stages.len() {
            self.stages
                .resize(other.stages.len(), StageStats::default());
        }
        for (mine, theirs) in self.stages.iter_mut().zip(&other.stages) {
            mine.merge_blocks(theirs);
        }
        assert_eq!(
            self.regions.len(),
            other.regions.len(),
            "shard region lists differ"
        );
        for (mine, theirs) in self.regions.iter_mut().zip(&other.regions) {
            assert_eq!(mine.name, theirs.name, "shard region lists differ");
            for g in 0..3 {
                mine.gmem[g].transactions += theirs.gmem[g].transactions;
                mine.gmem[g].bytes += theirs.gmem[g].bytes;
            }
            mine.requested_bytes += theirs.requested_bytes;
        }
        self.blocks += other.blocks;
        self.warps_per_block = other.warps_per_block;
        self.threads_per_block = other.threads_per_block;
    }
}

/// How a trace entry's destination becomes ready (selects the latency the
/// timing simulator applies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DstLatency {
    /// Ready after the arithmetic pipeline.
    Alu,
    /// Ready after the shared-memory pipeline.
    Smem,
    /// Ready when all global transactions complete.
    Gmem,
}

/// One warp-level instruction in a timing trace.
///
/// Register identifiers 0–127 are general registers; 128–131 are the four
/// predicate registers.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Table 1 class (sets issue-port occupancy).
    pub class: InstrClass,
    /// First destination register id, plus count (0 = no destination).
    pub dst: u8,
    /// Number of destination registers written.
    pub dst_n: u8,
    /// Source register ids (`0xFF` padding beyond `nsrcs`).
    pub srcs: [u8; 8],
    /// Number of valid entries in `srcs`.
    pub nsrcs: u8,
    /// Which pipeline produces the destination value.
    pub dst_lat: DstLatency,
    /// Shared-memory half-warp transactions this instruction generates
    /// (0 = does not touch shared memory).
    pub smem_half_txns: u16,
    /// Coalesced global transactions (GT200 granularity), if any.
    pub gmem: Option<Box<[Transaction]>>,
    /// `true` for global loads (destination waits on memory).
    pub gmem_load: bool,
    /// `true` for `bar.sync`.
    pub bar: bool,
}

/// Per-warp instruction traces of one block.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockTrace {
    /// One entry stream per warp.
    pub warps: Vec<Vec<TraceEntry>>,
}

impl TraceEntry {
    /// Equality up to global-memory *placement*: everything the timing
    /// replay consumes for a non-texture kernel — instruction class,
    /// register dependencies, destination latency, bank-conflict weight,
    /// and the coalesced transaction count and sizes — but not the
    /// transaction base addresses, which legitimately differ between
    /// blocks of a perfectly homogeneous grid (each block walks its own
    /// slice of memory).
    pub fn shape_eq(&self, other: &TraceEntry) -> bool {
        let gmem_shape = match (&self.gmem, &other.gmem) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.size == y.size)
            }
            _ => false,
        };
        self.class == other.class
            && self.dst == other.dst
            && self.dst_n == other.dst_n
            && self.srcs == other.srcs
            && self.nsrcs == other.nsrcs
            && self.dst_lat == other.dst_lat
            && self.smem_half_txns == other.smem_half_txns
            && self.gmem_load == other.gmem_load
            && self.bar == other.bar
            && gmem_shape
    }
}

impl BlockTrace {
    /// Total traced warp-instructions.
    pub fn len(&self) -> usize {
        self.warps.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no instructions were traced.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether two block traces replay identically on a non-texture
    /// timing simulation (see [`TraceEntry::shape_eq`]). This is the
    /// homogeneity test behind `TraceMode::Auto`: a grid whose blocks
    /// are pairwise shape-equal can be timed from a single block's
    /// trace.
    pub fn shape_eq(&self, other: &BlockTrace) -> bool {
        self.warps.len() == other.warps.len()
            && self
                .warps
                .iter()
                .zip(&other.warps)
                .all(|(a, b)| a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.shape_eq(y)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = StageStats::default();
        a.instr_by_class[1] = 10;
        a.fmad = 4;
        let mut b = StageStats::default();
        b.instr_by_class[1] = 5;
        b.smem_half_txns = 8;
        b.smem_half_accesses = 2;
        a.merge(&b);
        assert_eq!(a.instr(InstrClass::TypeII), 15);
        assert_eq!(a.smem_warp_equiv(), 4.0);
        assert_eq!(a.bank_conflict_factor(), 4.0);
    }

    #[test]
    fn merge_blocks_sums_warp_gauges() {
        let mut a = StageStats {
            warps_any: 4,
            warps_smem: 2,
            ..Default::default()
        };
        let b = StageStats {
            warps_any: 3,
            warps_smem: 5,
            ..Default::default()
        };
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!((m.warps_any, m.warps_smem), (4, 5)); // cross-stage: max
        a.merge_blocks(&b);
        assert_eq!((a.warps_any, a.warps_smem), (7, 7)); // shards: sum
    }

    #[test]
    fn merge_shard_is_stagewise_and_additive() {
        let region = |n: u64| RegionStats {
            name: "r".into(),
            base: 0,
            len: 64,
            texture: false,
            gmem: [GmemGranStats {
                transactions: n,
                bytes: 32 * n,
            }; 3],
            requested_bytes: 4 * n,
        };
        let stage = |instrs: u64, warps: u64| StageStats {
            instr_by_class: [instrs, 0, 0, 0],
            warps_any: warps,
            ..Default::default()
        };
        let mut a = DynamicStats {
            stages: vec![stage(3, 2)],
            regions: vec![region(1)],
            blocks: 2,
            warps_per_block: 2,
            threads_per_block: 64,
        };
        let b = DynamicStats {
            stages: vec![stage(5, 4), stage(7, 4)],
            regions: vec![region(10)],
            blocks: 3,
            warps_per_block: 2,
            threads_per_block: 64,
        };
        a.merge_shard(&b);
        assert_eq!(a.blocks, 5);
        assert_eq!(a.stages.len(), 2);
        assert_eq!(a.stages[0].instr(InstrClass::TypeI), 8);
        assert_eq!(a.stages[0].warps_any, 6);
        assert_eq!(a.stages[1].instr(InstrClass::TypeI), 7);
        assert_eq!(a.regions[0].gmem[0].transactions, 11);
        assert_eq!(a.regions[0].requested_bytes, 44);
    }

    #[test]
    #[should_panic(expected = "shard region lists differ")]
    fn merge_shard_rejects_mismatched_regions() {
        let mut a = DynamicStats::default();
        let b = DynamicStats {
            regions: vec![RegionStats {
                name: "x".into(),
                base: 0,
                len: 4,
                texture: false,
                gmem: Default::default(),
                requested_bytes: 0,
            }],
            ..Default::default()
        };
        a.merge_shard(&b);
    }

    #[test]
    fn density_and_efficiency() {
        let mut s = StageStats::default();
        s.instr_by_class[1] = 10;
        s.fmad = 8;
        s.gmem[0] = GmemGranStats {
            transactions: 2,
            bytes: 64,
        };
        s.gmem_requested_bytes = 32;
        assert!((s.computational_density() - 0.8).abs() < 1e-12);
        assert!((s.coalesce_efficiency(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = StageStats::default();
        assert_eq!(s.instr_total(), 0);
        assert_eq!(s.bank_conflict_factor(), 1.0);
        assert_eq!(s.coalesce_efficiency(0), 1.0);
        assert_eq!(s.computational_density(), 0.0);
    }

    #[test]
    fn dynamic_total_sums_stages() {
        let mut d = DynamicStats::default();
        let mut s1 = StageStats::default();
        s1.instr_by_class[0] = 3;
        let mut s2 = StageStats::default();
        s2.instr_by_class[0] = 4;
        d.stages = vec![s1, s2];
        assert_eq!(d.total().instr(InstrClass::TypeI), 7);
    }

    #[test]
    fn region_contains() {
        let r = RegionStats {
            name: "x".into(),
            base: 100,
            len: 50,
            texture: false,
            gmem: Default::default(),
            requested_bytes: 0,
        };
        assert!(r.contains(100));
        assert!(r.contains(149));
        assert!(!r.contains(150));
        assert!(!r.contains(99));
    }
}
