//! Tests for the functional simulator.

use super::*;
use gpa_isa::builder::KernelBuilder;
#[allow(unused_imports)]
use gpa_isa::instr as _instr_mod;
use gpa_isa::instr::{CmpOp, NumTy, Pred, Reg, Src, Width};

fn machine() -> Machine {
    Machine::gtx285()
}

/// out[global_tid] = global_tid * 3 + 1
fn linear_kernel() -> Kernel {
    let mut b = KernelBuilder::new("linear");
    b.set_threads(64);
    let out_p = b.param_alloc();
    let tid = b.alloc_reg().unwrap();
    let tmp = b.alloc_reg().unwrap();
    let addr = b.alloc_reg().unwrap();
    let val = b.alloc_reg().unwrap();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(tmp, SpecialReg::CtaIdX);
    b.s2r(addr, SpecialReg::NTidX);
    b.imad(tid, Src::Reg(tmp), Src::Reg(addr), Src::Reg(tid)); // global tid
    b.imul(val, Src::Reg(tid), Src::Imm(3));
    b.iadd(val, Src::Reg(val), Src::Imm(1));
    b.shl(addr, Src::Reg(tid), Src::Imm(2));
    b.ld_param(tmp, out_p);
    b.iadd(addr, Src::Reg(addr), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(addr), 0), val, Width::B32);
    b.exit();
    b.finish().unwrap()
}

#[test]
fn linear_kernel_writes_expected_values() {
    let m = machine();
    let k = linear_kernel();
    let launch = LaunchConfig::new_1d(4, 64);
    let mut gmem = GlobalMemory::new();
    let out = gmem.alloc(256 * 4, 4);
    let mut sim = FunctionalSim::new(&m, &k, launch).unwrap();
    sim.set_params(&[out as u32]);
    let res = sim.run(&mut gmem).unwrap();
    for i in 0..256u64 {
        assert_eq!(
            gmem.read_u32(out + i * 4).unwrap(),
            (i * 3 + 1) as u32,
            "index {i}"
        );
    }
    let total = res.stats.total();
    // 11 instructions (incl. exit) × 2 warps × 4 blocks.
    assert_eq!(total.instr_total(), 11 * 2 * 4);
    assert_eq!(res.stats.blocks, 4);
    assert_eq!(res.stats.warps_per_block, 2);
    // The store is one coalesced 64 B transaction per half-warp.
    assert_eq!(total.gmem[GRAN_GT200].transactions, 4 * 4);
    assert_eq!(total.gmem[GRAN_GT200].bytes, 4 * 4 * 64);
    assert_eq!(total.gmem_requested_bytes, 256 * 4);
    assert!((total.coalesce_efficiency(GRAN_GT200) - 1.0).abs() < 1e-12);
}

#[test]
fn loop_accumulates() {
    // acc = Σ_{i<10} i = 45, stored per thread.
    let mut b = KernelBuilder::new("loop");
    b.set_threads(32);
    let out_p = b.param_alloc();
    let acc = b.alloc_reg().unwrap();
    let i = b.alloc_reg().unwrap();
    let addr = b.alloc_reg().unwrap();
    b.mov_imm(acc, 0);
    b.mov_imm(i, 0);
    b.label("top");
    b.iadd(acc, Src::Reg(acc), Src::Reg(i));
    b.iadd(i, Src::Reg(i), Src::Imm(1));
    b.setp(Pred(0), CmpOp::Lt, NumTy::S32, Src::Reg(i), Src::Imm(10));
    b.bra_if(Pred(0), false, "top");
    b.s2r(addr, SpecialReg::TidX);
    b.shl(addr, Src::Reg(addr), Src::Imm(2));
    let tmp = b.alloc_reg().unwrap();
    b.ld_param(tmp, out_p);
    b.iadd(addr, Src::Reg(addr), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(addr), 0), acc, Width::B32);
    b.exit();
    let k = b.finish().unwrap();

    let m = machine();
    let mut gmem = GlobalMemory::new();
    let out = gmem.alloc(32 * 4, 4);
    let mut sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(1, 32)).unwrap();
    sim.set_params(&[out as u32]);
    sim.run(&mut gmem).unwrap();
    assert_eq!(gmem.read_u32(out).unwrap(), 45);
    assert_eq!(gmem.read_u32(out + 31 * 4).unwrap(), 45);
}

#[test]
fn divergent_if_else_reconverges() {
    // x = tid < 10 ? 111 : 222; both arms then add 1 after reconvergence.
    let mut b = KernelBuilder::new("diverge");
    b.set_threads(32);
    let out_p = b.param_alloc();
    let tid = b.alloc_reg().unwrap();
    let x = b.alloc_reg().unwrap();
    b.s2r(tid, SpecialReg::TidX);
    b.setp(Pred(0), CmpOp::Lt, NumTy::S32, Src::Reg(tid), Src::Imm(10));
    b.bra_if(Pred(0), false, "then");
    b.mov_imm(x, 222); // else arm
    b.bra("join");
    b.label("then");
    b.mov_imm(x, 111);
    b.label("join");
    b.iadd(x, Src::Reg(x), Src::Imm(1));
    let addr = b.alloc_reg().unwrap();
    b.shl(addr, Src::Reg(tid), Src::Imm(2));
    let tmp = b.alloc_reg().unwrap();
    b.ld_param(tmp, out_p);
    b.iadd(addr, Src::Reg(addr), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(addr), 0), x, Width::B32);
    b.exit();
    let k = b.finish().unwrap();

    let m = machine();
    let mut gmem = GlobalMemory::new();
    let out = gmem.alloc(32 * 4, 4);
    let mut sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(1, 32)).unwrap();
    sim.set_params(&[out as u32]);
    sim.run(&mut gmem).unwrap();
    for i in 0..32u64 {
        let expect = if i < 10 { 112 } else { 223 };
        assert_eq!(gmem.read_u32(out + i * 4).unwrap(), expect, "lane {i}");
    }
}

#[test]
fn nested_divergence() {
    // y = tid < 16 ? (tid < 8 ? 1 : 2) : 3, plus 10 after the join.
    let mut b = KernelBuilder::new("nested");
    b.set_threads(32);
    let out_p = b.param_alloc();
    let tid = b.alloc_reg().unwrap();
    let y = b.alloc_reg().unwrap();
    b.s2r(tid, SpecialReg::TidX);
    b.setp(Pred(0), CmpOp::Lt, NumTy::S32, Src::Reg(tid), Src::Imm(16));
    b.bra_if(Pred(0), false, "outer_then");
    b.mov_imm(y, 3);
    b.bra("outer_join");
    b.label("outer_then");
    b.setp(Pred(1), CmpOp::Lt, NumTy::S32, Src::Reg(tid), Src::Imm(8));
    b.bra_if(Pred(1), false, "inner_then");
    b.mov_imm(y, 2);
    b.bra("outer_join");
    b.label("inner_then");
    b.mov_imm(y, 1);
    b.label("outer_join");
    b.iadd(y, Src::Reg(y), Src::Imm(10));
    let addr = b.alloc_reg().unwrap();
    b.shl(addr, Src::Reg(tid), Src::Imm(2));
    let tmp = b.alloc_reg().unwrap();
    b.ld_param(tmp, out_p);
    b.iadd(addr, Src::Reg(addr), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(addr), 0), y, Width::B32);
    b.exit();
    let k = b.finish().unwrap();

    let m = machine();
    let mut gmem = GlobalMemory::new();
    let out = gmem.alloc(32 * 4, 4);
    let mut sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(1, 32)).unwrap();
    sim.set_params(&[out as u32]);
    sim.run(&mut gmem).unwrap();
    for i in 0..32u64 {
        let expect = if i < 8 {
            11
        } else if i < 16 {
            12
        } else {
            13
        };
        assert_eq!(gmem.read_u32(out + i * 4).unwrap(), expect, "lane {i}");
    }
}

#[test]
fn barrier_stages_split_statistics() {
    // Stage 0: each thread stores tid to shared; barrier; stage 1: read
    // the reversed entry and store to global.
    let mut b = KernelBuilder::new("stages");
    b.set_threads(64);
    let out_p = b.param_alloc();
    let buf = b.smem_alloc(64 * 4, 4).unwrap() as i32;
    let tid = b.alloc_reg().unwrap();
    let a = b.alloc_reg().unwrap();
    b.s2r(tid, SpecialReg::TidX);
    b.shl(a, Src::Reg(tid), Src::Imm(2));
    b.st_shared(MemAddr::new(Some(a), buf), tid, Width::B32);
    b.bar();
    // rev = (63 - tid) * 4
    let rev = b.alloc_reg().unwrap();
    b.isub(rev, Src::Imm(63), Src::Reg(tid));
    b.shl(rev, Src::Reg(rev), Src::Imm(2));
    let v = b.alloc_reg().unwrap();
    b.ld_shared(v, MemAddr::new(Some(rev), buf), Width::B32);
    let addr = b.alloc_reg().unwrap();
    let tmp = b.alloc_reg().unwrap();
    b.shl(addr, Src::Reg(tid), Src::Imm(2));
    b.ld_param(tmp, out_p);
    b.iadd(addr, Src::Reg(addr), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(addr), 0), v, Width::B32);
    b.exit();
    let k = b.finish().unwrap();

    let m = machine();
    let mut gmem = GlobalMemory::new();
    let out = gmem.alloc(64 * 4, 4);
    let mut sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(1, 64)).unwrap();
    sim.set_params(&[out as u32]);
    let res = sim.run(&mut gmem).unwrap();
    for i in 0..64u64 {
        assert_eq!(gmem.read_u32(out + i * 4).unwrap(), 63 - i as u32);
    }
    // Two stages, with the barrier counted in stage 0.
    assert_eq!(res.stats.stages.len(), 2);
    assert_eq!(res.stats.stages[0].barriers, 2); // 2 warps arrived
    assert_eq!(res.stats.stages[0].smem_instrs, 2); // 2 warps × 1 store
    assert_eq!(res.stats.stages[1].smem_instrs, 2); // 2 warps × 1 load
                                                    // Conflict-free accesses: warp-equivalent = instruction count.
    assert_eq!(res.stats.stages[0].smem_warp_equiv(), 2.0);
    assert_eq!(res.stats.stages[0].bank_conflict_factor(), 1.0);
}

#[test]
fn stride_two_shared_access_counts_double_transactions() {
    // Each thread reads s[(2*tid)*4]: classic 2-way bank conflict.
    let mut b = KernelBuilder::new("conflict");
    b.set_threads(32);
    let buf = b.smem_alloc(64 * 4, 4).unwrap() as i32;
    let tid = b.alloc_reg().unwrap();
    let a = b.alloc_reg().unwrap();
    let v = b.alloc_reg().unwrap();
    b.s2r(tid, SpecialReg::TidX);
    b.shl(a, Src::Reg(tid), Src::Imm(3)); // tid * 8 bytes = stride 2 words
    b.ld_shared(v, MemAddr::new(Some(a), buf), Width::B32);
    b.exit();
    let k = b.finish().unwrap();

    let m = machine();
    let mut gmem = GlobalMemory::new();
    let sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(1, 32)).unwrap();
    let res = sim.run(&mut gmem).unwrap();
    let t = res.stats.total();
    assert_eq!(t.smem_instrs, 1);
    // 2-way conflict in both half-warps: 4 half-transactions = 2.0
    // warp-equivalents over a conflict-free 1.0.
    assert_eq!(t.smem_half_txns, 4);
    assert_eq!(t.smem_half_accesses, 2);
    assert_eq!(t.bank_conflict_factor(), 2.0);
}

#[test]
fn smem_operand_in_fmad_counts_shared_traffic() {
    let mut b = KernelBuilder::new("smem_operand");
    b.set_threads(32);
    let buf = b.smem_alloc(4, 4).unwrap() as i32;
    let two = b.alloc_reg().unwrap();
    let acc = b.alloc_reg().unwrap();
    b.mov_imm_f32(two, 2.0);
    b.st_shared(MemAddr::new(None, buf), two, Width::B32);
    b.mov_imm_f32(acc, 1.0);
    // acc = acc * s[buf] + acc → 1*2+1 = 3
    b.fmad(acc, Src::Reg(acc), Src::smem(None, buf), Src::Reg(acc));
    let out_p = b.param_alloc();
    let addr = b.alloc_reg().unwrap();
    let tid = b.alloc_reg().unwrap();
    b.s2r(tid, SpecialReg::TidX);
    b.shl(addr, Src::Reg(tid), Src::Imm(2));
    let tmp = b.alloc_reg().unwrap();
    b.ld_param(tmp, out_p);
    b.iadd(addr, Src::Reg(addr), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(addr), 0), acc, Width::B32);
    b.exit();
    let k = b.finish().unwrap();

    let m = machine();
    let mut gmem = GlobalMemory::new();
    let out = gmem.alloc(32 * 4, 4);
    let mut sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(1, 32)).unwrap();
    sim.set_params(&[out as u32]);
    let res = sim.run(&mut gmem).unwrap();
    assert_eq!(gmem.read_f32(out).unwrap(), 3.0);
    let t = res.stats.total();
    // One store + one broadcast operand read = 2 shared instructions.
    assert_eq!(t.smem_instrs, 2);
    assert_eq!(t.fmad, 1);
    // FMad = 2 flops × 32 lanes.
    assert_eq!(t.flops, 64);
}

#[test]
fn uncoalesced_loads_need_more_transactions() {
    // Each thread loads a[tid * 32] (stride 128 B): 16 transactions per
    // half-warp at GT200 granularity.
    let mut b = KernelBuilder::new("scatter");
    b.set_threads(32);
    let in_p = b.param_alloc();
    let tid = b.alloc_reg().unwrap();
    let addr = b.alloc_reg().unwrap();
    let v = b.alloc_reg().unwrap();
    b.s2r(tid, SpecialReg::TidX);
    b.shl(addr, Src::Reg(tid), Src::Imm(7)); // ×128
    let base = b.alloc_reg().unwrap();
    b.ld_param(base, in_p);
    b.iadd(addr, Src::Reg(addr), Src::Reg(base));
    b.ld_global(v, MemAddr::new(Some(addr), 0), Width::B32);
    b.exit();
    let k = b.finish().unwrap();

    let m = machine();
    let mut gmem = GlobalMemory::new();
    let input = gmem.alloc(32 * 128, 128);
    let mut sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(1, 32)).unwrap();
    sim.set_params(&[input as u32]);
    sim.add_region("input", input, 32 * 128);
    let res = sim.run(&mut gmem).unwrap();
    let t = res.stats.total();
    assert_eq!(t.gmem[GRAN_GT200].transactions, 32);
    assert_eq!(t.gmem[GRAN_GT200].bytes, 32 * 32);
    assert_eq!(t.gmem_requested_bytes, 32 * 4);
    // 16 B and 4 B granularities move fewer bytes (Figure 11's effect).
    assert_eq!(t.gmem[1].bytes, 32 * 16);
    assert_eq!(t.gmem[2].bytes, 32 * 4);
    // Region attribution captured everything.
    assert_eq!(res.stats.regions[0].gmem[GRAN_GT200].bytes, 32 * 32);
    assert_eq!(res.stats.regions[0].requested_bytes, 32 * 4);
}

#[test]
fn special_registers_reflect_block_and_grid() {
    let mut b = KernelBuilder::new("sr");
    b.set_threads(32);
    let out_p = b.param_alloc();
    let r = b.alloc_reg().unwrap();
    let addr = b.alloc_reg().unwrap();
    let tmp = b.alloc_reg().unwrap();
    // r = ctaid.y * 1000 + ctaid.x
    b.s2r(r, SpecialReg::CtaIdY);
    b.imul(r, Src::Reg(r), Src::Imm(1000));
    b.s2r(tmp, SpecialReg::CtaIdX);
    b.iadd(r, Src::Reg(r), Src::Reg(tmp));
    // addr = out + 4*(bid_linear = ctaid.y * nctaid.x + ctaid.x)
    b.s2r(addr, SpecialReg::CtaIdY);
    let w = b.alloc_reg().unwrap();
    b.s2r(w, SpecialReg::NCtaIdX);
    b.imul(addr, Src::Reg(addr), Src::Reg(w));
    b.iadd(addr, Src::Reg(addr), Src::Reg(tmp));
    b.shl(addr, Src::Reg(addr), Src::Imm(2));
    b.ld_param(w, out_p);
    b.iadd(addr, Src::Reg(addr), Src::Reg(w));
    b.st_global(MemAddr::new(Some(addr), 0), r, Width::B32);
    b.exit();
    let k = b.finish().unwrap();

    let m = machine();
    let mut gmem = GlobalMemory::new();
    let out = gmem.alloc(6 * 4, 4);
    let mut sim = FunctionalSim::new(&m, &k, LaunchConfig::new_2d((3, 2), (32, 1))).unwrap();
    sim.set_params(&[out as u32]);
    sim.run(&mut gmem).unwrap();
    for by in 0..2u64 {
        for bx in 0..3u64 {
            let v = gmem.read_u32(out + (by * 3 + bx) * 4).unwrap();
            assert_eq!(v, (by * 1000 + bx) as u32);
        }
    }
}

#[test]
fn partial_warp_masks_inactive_lanes() {
    let m = machine();
    let k = linear_kernel();
    // 40 threads: warp 1 has only 8 live lanes.
    let launch = LaunchConfig::new_2d((1, 1), (40, 1));
    let mut gmem = GlobalMemory::new();
    let out = gmem.alloc(40 * 4, 4);
    let mut sim = FunctionalSim::new(&m, &k, launch).unwrap();
    sim.set_params(&[out as u32]);
    let res = sim.run(&mut gmem).unwrap();
    for i in 0..40u64 {
        assert_eq!(gmem.read_u32(out + i * 4).unwrap(), (i * 3 + 1) as u32);
    }
    // Still 2 warps issued (partial warp occupies a whole warp, paper §2).
    assert_eq!(res.stats.total().instr_total(), 11 * 2);
}

#[test]
fn doubles_compute_correctly() {
    let mut b = KernelBuilder::new("dbl");
    b.set_threads(32);
    let out_p = b.param_alloc();
    let a = b.alloc_contig(2).unwrap();
    let c = b.alloc_contig(2).unwrap();
    // a = 1.5 (f64), c = a*a + a = 3.75
    let bits = 1.5f64.to_bits();
    b.mov_imm(a, bits as u32);
    b.mov_imm(Reg(a.0 + 1), (bits >> 32) as u32);
    b.dfma(c, a, a, a);
    let addr = b.alloc_reg().unwrap();
    let tid = b.alloc_reg().unwrap();
    b.s2r(tid, SpecialReg::TidX);
    b.shl(addr, Src::Reg(tid), Src::Imm(3));
    let tmp = b.alloc_reg().unwrap();
    b.ld_param(tmp, out_p);
    b.iadd(addr, Src::Reg(addr), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(addr), 0), c, Width::B64);
    b.exit();
    let k = b.finish().unwrap();

    let m = machine();
    let mut gmem = GlobalMemory::new();
    let out = gmem.alloc(32 * 8, 8);
    let mut sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(1, 32)).unwrap();
    sim.set_params(&[out as u32]);
    let res = sim.run(&mut gmem).unwrap();
    let lo = gmem.read_u32(out).unwrap();
    let hi = gmem.read_u32(out + 4).unwrap();
    assert_eq!(f64::from_bits(u64::from(lo) | (u64::from(hi) << 32)), 3.75);
    // DFma is Type IV.
    assert_eq!(res.stats.total().instr(gpa_hw::InstrClass::TypeIV), 1);
}

#[test]
fn sfu_ops_are_type_iii_and_compute() {
    let mut b = KernelBuilder::new("sfu");
    b.set_threads(32);
    let out_p = b.param_alloc();
    let x = b.alloc_reg().unwrap();
    b.mov_imm_f32(x, 4.0);
    b.rcp(x, Src::Reg(x)); // 0.25
    b.rsq(x, Src::Reg(x)); // 2.0
    let addr = b.alloc_reg().unwrap();
    let tid = b.alloc_reg().unwrap();
    b.s2r(tid, SpecialReg::TidX);
    b.shl(addr, Src::Reg(tid), Src::Imm(2));
    let tmp = b.alloc_reg().unwrap();
    b.ld_param(tmp, out_p);
    b.iadd(addr, Src::Reg(addr), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(addr), 0), x, Width::B32);
    b.exit();
    let k = b.finish().unwrap();

    let m = machine();
    let mut gmem = GlobalMemory::new();
    let out = gmem.alloc(32 * 4, 4);
    let mut sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(1, 32)).unwrap();
    sim.set_params(&[out as u32]);
    let res = sim.run(&mut gmem).unwrap();
    assert_eq!(gmem.read_f32(out).unwrap(), 2.0);
    assert_eq!(res.stats.total().instr(gpa_hw::InstrClass::TypeIII), 2);
}

#[test]
fn global_out_of_bounds_reported() {
    let mut b = KernelBuilder::new("oob");
    b.set_threads(32);
    let v = b.alloc_reg().unwrap();
    b.ld_global(v, MemAddr::new(None, 8), Width::B32); // nothing allocated
    b.exit();
    let k = b.finish().unwrap();
    let m = machine();
    let mut gmem = GlobalMemory::new();
    let sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(1, 32)).unwrap();
    let err = sim.run(&mut gmem).unwrap_err();
    assert!(matches!(err, SimError::GlobalOutOfBounds { .. }), "{err}");
}

#[test]
fn shared_out_of_bounds_reported() {
    let mut b = KernelBuilder::new("soob");
    b.set_threads(32);
    let _ = b.smem_alloc(16, 4).unwrap();
    let tid = b.alloc_reg().unwrap();
    let a = b.alloc_reg().unwrap();
    let v = b.alloc_reg().unwrap();
    b.s2r(tid, SpecialReg::TidX);
    b.shl(a, Src::Reg(tid), Src::Imm(2));
    b.ld_shared(v, MemAddr::new(Some(a), 0), Width::B32); // lanes ≥ 4 fault
    b.exit();
    let k = b.finish().unwrap();
    let m = machine();
    let mut gmem = GlobalMemory::new();
    let sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(1, 32)).unwrap();
    let err = sim.run(&mut gmem).unwrap_err();
    assert!(matches!(err, SimError::SharedOutOfBounds { .. }), "{err}");
}

#[test]
fn divergent_barrier_reported() {
    let mut b = KernelBuilder::new("divbar");
    b.set_threads(32);
    let tid = b.alloc_reg().unwrap();
    b.s2r(tid, SpecialReg::TidX);
    b.setp(Pred(0), CmpOp::Lt, NumTy::S32, Src::Reg(tid), Src::Imm(16));
    b.bra_if(Pred(0), false, "skip");
    b.bar(); // inside a divergent region
    b.label("skip");
    b.bar();
    b.exit();
    let k = b.finish().unwrap();
    let m = machine();
    let mut gmem = GlobalMemory::new();
    let sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(1, 32)).unwrap();
    let err = sim.run(&mut gmem).unwrap_err();
    assert!(matches!(err, SimError::DivergentBarrier { .. }), "{err}");
}

#[test]
fn fuel_guards_infinite_loops() {
    let mut b = KernelBuilder::new("inf");
    b.set_threads(32);
    b.label("top");
    b.nop();
    b.bra("top");
    b.exit();
    let k = b.finish().unwrap();
    let m = machine();
    let mut gmem = GlobalMemory::new();
    let mut sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(1, 32)).unwrap();
    sim.set_fuel(1000);
    assert_eq!(sim.run(&mut gmem).unwrap_err(), SimError::FuelExhausted);
}

#[test]
fn param_out_of_bounds_reported() {
    let mut b = KernelBuilder::new("p");
    b.set_threads(32);
    let _ = b.param_alloc();
    let r = b.alloc_reg().unwrap();
    b.ld_param(r, 0);
    b.exit();
    let k = b.finish().unwrap();
    let m = machine();
    let mut gmem = GlobalMemory::new();
    let sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(1, 32)).unwrap();
    // No params supplied.
    let err = sim.run(&mut gmem).unwrap_err();
    assert_eq!(err, SimError::ParamOutOfBounds { offset: 0 });
}

#[test]
fn traces_record_dependencies_and_memory() {
    let mut b = KernelBuilder::new("trace");
    b.set_threads(32);
    let buf = b.smem_alloc(4 * 32, 4).unwrap() as i32;
    let in_p = b.param_alloc();
    let tid = b.alloc_reg().unwrap();
    let addr = b.alloc_reg().unwrap();
    let v = b.alloc_reg().unwrap();
    b.s2r(tid, SpecialReg::TidX);
    b.shl(addr, Src::Reg(tid), Src::Imm(2));
    let base = b.alloc_reg().unwrap();
    b.ld_param(base, in_p);
    b.iadd(base, Src::Reg(base), Src::Reg(addr));
    b.ld_global(v, MemAddr::new(Some(base), 0), Width::B32);
    b.st_shared(MemAddr::new(Some(addr), buf), v, Width::B32);
    b.bar();
    b.exit();
    let k = b.finish().unwrap();

    let m = machine();
    let mut gmem = GlobalMemory::new();
    let input = gmem.alloc(32 * 4, 4);
    let mut sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(1, 32)).unwrap();
    sim.set_params(&[input as u32]);
    sim.collect_traces(true);
    let res = sim.run(&mut gmem).unwrap();
    let traces = res.traces.unwrap();
    assert_eq!(traces.len(), 1);
    let warp0 = &traces[0].warps[0];
    // 7 instructions traced (incl. bar, excl. exit).
    assert_eq!(warp0.len(), 7);
    let ld = &warp0[4];
    assert!(ld.gmem_load);
    assert_eq!(ld.dst_lat, DstLatency::Gmem);
    let txs = ld.gmem.as_ref().unwrap();
    assert_eq!(txs.len(), 2); // two coalesced half-warps
    let st = &warp0[5];
    assert_eq!(st.smem_half_txns, 2); // conflict-free store
    assert!(warp0[6].bar);
}

#[test]
fn guarded_exit_retires_lanes_early() {
    // Lanes ≥ 8 exit immediately; the rest store 5.
    let mut b = KernelBuilder::new("gexit");
    b.set_threads(32);
    let out_p = b.param_alloc();
    let tid = b.alloc_reg().unwrap();
    b.s2r(tid, SpecialReg::TidX);
    b.setp(Pred(0), CmpOp::Ge, NumTy::S32, Src::Reg(tid), Src::Imm(8));
    b.set_guard(Pred(0), false);
    b.emit(gpa_isa::instr::Op::Exit);
    b.clear_guard();
    let v = b.alloc_reg().unwrap();
    b.mov_imm(v, 5);
    let addr = b.alloc_reg().unwrap();
    b.shl(addr, Src::Reg(tid), Src::Imm(2));
    let tmp = b.alloc_reg().unwrap();
    b.ld_param(tmp, out_p);
    b.iadd(addr, Src::Reg(addr), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(addr), 0), v, Width::B32);
    b.exit();
    let k = b.finish().unwrap();

    let m = machine();
    let mut gmem = GlobalMemory::new();
    let out = gmem.alloc(32 * 4, 4);
    let mut sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(1, 32)).unwrap();
    sim.set_params(&[out as u32]);
    sim.run(&mut gmem).unwrap();
    for i in 0..32u64 {
        let expect = if i < 8 { 5 } else { 0 };
        assert_eq!(gmem.read_u32(out + i * 4).unwrap(), expect, "lane {i}");
    }
}

#[test]
fn atomic_add_serializes_and_returns_old_values() {
    // Every lane atomically adds 1 to the same shared word; old values
    // (lane order 0..31) go to global memory, the final count to slot 32.
    let mut b = KernelBuilder::new("hotspot");
    b.set_threads(32);
    let out_p = b.param_alloc();
    let one = b.alloc_reg().unwrap();
    let old = b.alloc_reg().unwrap();
    let tid = b.alloc_reg().unwrap();
    let addr = b.alloc_reg().unwrap();
    let tmp = b.alloc_reg().unwrap();
    let _slot = b.smem_alloc(4, 4).unwrap();
    b.mov_imm(one, 1);
    b.atom_shared_add(old, MemAddr::new(None, 0), one);
    b.s2r(tid, SpecialReg::TidX);
    b.shl(addr, Src::Reg(tid), Src::Imm(2));
    b.ld_param(tmp, out_p);
    b.iadd(addr, Src::Reg(addr), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(addr), 0), old, Width::B32);
    b.bar();
    // Lane 0 publishes the final counter.
    b.setp(Pred(0), CmpOp::Eq, NumTy::S32, Src::Reg(tid), Src::Imm(0));
    b.set_guard(Pred(0), false);
    b.ld_shared(old, MemAddr::new(None, 0), Width::B32);
    b.st_global(MemAddr::new(Some(addr), 32 * 4), old, Width::B32);
    b.clear_guard();
    b.exit();
    let k = b.finish().unwrap();

    let m = machine();
    let mut gmem = GlobalMemory::new();
    let out = gmem.alloc(33 * 4, 4);
    let mut sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(1, 32)).unwrap();
    sim.set_params(&[out as u32]);
    let res = sim.run(&mut gmem).unwrap();
    for lane in 0..32u64 {
        assert_eq!(gmem.read_u32(out + lane * 4).unwrap(), lane as u32);
    }
    assert_eq!(gmem.read_u32(out + 32 * 4).unwrap(), 32);

    // One warp, all 32 lanes on one word: each half-warp serializes
    // 16-deep → 32 half-warp transactions against 2 contention-free.
    let total = res.stats.total();
    assert_eq!(total.atomic_instrs, 1);
    assert_eq!(total.atomic_half_txns, 32);
    assert_eq!(total.atomic_half_accesses, 2);
    assert_eq!(total.warps_atomic, 1);
    assert!((total.atomic_contention_factor() - 16.0).abs() < 1e-12);
    // The serialized weight also occupies the shared-memory pipeline
    // (the ld.shared above adds its own conflict-free access).
    assert_eq!(total.smem_half_txns, 32 + 1);
    assert_eq!(total.atomic_instrs + 1, total.smem_instrs);
}

#[test]
fn atomic_add_spread_across_banks_is_contention_free() {
    // Lane i increments word i: distinct banks, no serialization.
    let mut b = KernelBuilder::new("spread");
    b.set_threads(32);
    let one = b.alloc_reg().unwrap();
    let old = b.alloc_reg().unwrap();
    let tid = b.alloc_reg().unwrap();
    let addr = b.alloc_reg().unwrap();
    let _arr = b.smem_alloc(32 * 4, 4).unwrap();
    b.mov_imm(one, 1);
    b.s2r(tid, SpecialReg::TidX);
    b.shl(addr, Src::Reg(tid), Src::Imm(2));
    b.atom_shared_add(old, MemAddr::new(Some(addr), 0), one);
    b.exit();
    let k = b.finish().unwrap();

    let m = machine();
    let mut gmem = GlobalMemory::new();
    let sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(1, 32)).unwrap();
    let res = sim.run(&mut gmem).unwrap();
    let total = res.stats.total();
    assert_eq!(total.atomic_half_txns, 2);
    assert_eq!(total.atomic_half_accesses, 2);
    assert!((total.atomic_contention_factor() - 1.0).abs() < 1e-12);
}

#[test]
fn atomic_cas_takes_only_first_lane() {
    // All lanes CAS(0 -> tid+1) on one word. Lane 0 wins (lane-order
    // serialization); every other lane reads lane 0's value back.
    let mut b = KernelBuilder::new("cas");
    b.set_threads(32);
    let out_p = b.param_alloc();
    let zero = b.alloc_reg().unwrap();
    let val = b.alloc_reg().unwrap();
    let old = b.alloc_reg().unwrap();
    let tid = b.alloc_reg().unwrap();
    let addr = b.alloc_reg().unwrap();
    let tmp = b.alloc_reg().unwrap();
    let _slot = b.smem_alloc(4, 4).unwrap();
    b.mov_imm(zero, 0);
    b.s2r(tid, SpecialReg::TidX);
    b.iadd(val, Src::Reg(tid), Src::Imm(1));
    b.atom_shared_cas(old, MemAddr::new(None, 0), zero, val);
    b.shl(addr, Src::Reg(tid), Src::Imm(2));
    b.ld_param(tmp, out_p);
    b.iadd(addr, Src::Reg(addr), Src::Reg(tmp));
    b.st_global(MemAddr::new(Some(addr), 0), old, Width::B32);
    b.exit();
    let k = b.finish().unwrap();

    let m = machine();
    let mut gmem = GlobalMemory::new();
    let out = gmem.alloc(32 * 4, 4);
    let mut sim = FunctionalSim::new(&m, &k, LaunchConfig::new_1d(1, 32)).unwrap();
    sim.set_params(&[out as u32]);
    sim.run(&mut gmem).unwrap();
    assert_eq!(gmem.read_u32(out).unwrap(), 0); // lane 0 saw the initial 0
    for lane in 1..32u64 {
        assert_eq!(gmem.read_u32(out + lane * 4).unwrap(), 1, "lane {lane}");
    }
}
