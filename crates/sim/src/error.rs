//! Simulation error type.

use gpa_isa::kernel::ValidateError;
use std::error::Error;
use std::fmt;

/// Errors surfaced while simulating a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The kernel failed structural validation before execution.
    InvalidKernel(ValidateError),
    /// A lane accessed global memory outside any allocation.
    GlobalOutOfBounds {
        /// Requested byte address.
        addr: u64,
        /// Access width in bytes.
        len: u32,
        /// Program counter of the access.
        pc: usize,
    },
    /// A lane accessed shared memory outside the block's declared region.
    SharedOutOfBounds {
        /// Requested byte offset.
        offset: i64,
        /// Access width in bytes.
        len: u32,
        /// Program counter of the access.
        pc: usize,
    },
    /// A memory access was not naturally aligned.
    Misaligned {
        /// Requested byte address.
        addr: u64,
        /// Access width in bytes.
        len: u32,
        /// Program counter of the access.
        pc: usize,
    },
    /// A `bar.sync` executed while the warp was diverged (CUDA requires
    /// barriers to be reached uniformly).
    DivergentBarrier {
        /// Program counter of the barrier.
        pc: usize,
    },
    /// Some warps of a block exited while others still waited at a barrier.
    BarrierDeadlock,
    /// The launch exceeds a hardware limit (block size, shared memory, …).
    LaunchTooLarge(String),
    /// A parameter word was read past the supplied parameter block.
    ParamOutOfBounds {
        /// Requested byte offset.
        offset: u16,
    },
    /// The kernel ran more warp-instructions than the configured fuel limit
    /// (runaway-loop guard).
    FuelExhausted,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidKernel(e) => write!(f, "invalid kernel: {e}"),
            SimError::GlobalOutOfBounds { addr, len, pc } => {
                write!(
                    f,
                    "global access of {len} B at {addr:#x} out of bounds (pc {pc})"
                )
            }
            SimError::SharedOutOfBounds { offset, len, pc } => {
                write!(
                    f,
                    "shared access of {len} B at offset {offset} out of bounds (pc {pc})"
                )
            }
            SimError::Misaligned { addr, len, pc } => {
                write!(f, "misaligned {len} B access at {addr:#x} (pc {pc})")
            }
            SimError::DivergentBarrier { pc } => {
                write!(f, "bar.sync reached by a diverged warp (pc {pc})")
            }
            SimError::BarrierDeadlock => write!(f, "barrier deadlock: some warps exited early"),
            SimError::LaunchTooLarge(what) => write!(f, "launch exceeds hardware limits: {what}"),
            SimError::ParamOutOfBounds { offset } => {
                write!(f, "parameter read at offset {offset} out of bounds")
            }
            SimError::FuelExhausted => write!(f, "instruction fuel exhausted (runaway loop?)"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::InvalidKernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateError> for SimError {
    fn from(e: ValidateError) -> Self {
        SimError::InvalidKernel(e)
    }
}
