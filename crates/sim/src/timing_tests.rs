//! Tests for the timing simulator, using hand-built traces.

use super::*;
use crate::stats::TraceEntry;
use gpa_hw::InstrClass;
use gpa_mem::coalesce::Transaction;

fn machine() -> Machine {
    Machine::gtx285()
}

fn entry(class: InstrClass) -> TraceEntry {
    TraceEntry {
        class,
        dst: 0,
        dst_n: 0,
        srcs: [0xFF; 8],
        nsrcs: 0,
        dst_lat: DstLatency::Alu,
        smem_half_txns: 0,
        gmem: None,
        gmem_load: false,
        bar: false,
    }
}

/// A chain of `n` Type II instructions, each reading its own result (RAW).
fn dependent_chain(n: usize) -> Vec<TraceEntry> {
    (0..n)
        .map(|_| {
            let mut e = entry(InstrClass::TypeII);
            e.dst = 0;
            e.dst_n = 1;
            e.srcs[0] = 0;
            e.nsrcs = 1;
            e
        })
        .collect()
}

/// `n` independent Type II instructions.
fn independent_stream(n: usize) -> Vec<TraceEntry> {
    (0..n)
        .map(|i| {
            let mut e = entry(InstrClass::TypeII);
            e.dst = (i % 16) as u8;
            e.dst_n = 1;
            e
        })
        .collect()
}

fn res(threads: u32) -> KernelResources {
    KernelResources::new(8, 0, threads)
}

fn one_block(warps: Vec<Vec<TraceEntry>>) -> TraceSource<'static> {
    TraceSource::Homogeneous(Arc::new(BlockTrace { warps }))
}

#[test]
fn dependent_chain_is_latency_bound() {
    let m = machine();
    let sim = TimingSim::new(&m);
    let n = 200;
    let mut src = one_block(vec![dependent_chain(n)]);
    let r = sim.run(&mut src, &LaunchConfig::new_1d(1, 32), res(32));
    // One warp, RAW chain: ~alu_latency per instruction.
    let expect = n as f64 * sim.config().alu_latency;
    assert!(
        (r.cycles - expect).abs() / expect < 0.1,
        "cycles {} vs expected {expect}",
        r.cycles
    );
}

#[test]
fn independent_stream_is_issue_bound() {
    let m = machine();
    let sim = TimingSim::new(&m);
    let n = 400;
    let mut src = one_block(vec![independent_stream(n)]);
    let r = sim.run(&mut src, &LaunchConfig::new_1d(1, 32), res(32));
    let occ = 32.0 / 8.0 + sim.config().issue_overhead;
    let expect = n as f64 * occ;
    assert!(
        (r.cycles - expect).abs() / expect < 0.1,
        "cycles {} vs expected {expect}",
        r.cycles
    );
}

#[test]
fn warp_parallelism_hides_alu_latency() {
    // With 6+ warps of dependent chains, throughput reaches the issue
    // bound (the paper's Figure 2 saturation at ~6 warps for Type II).
    let m = machine();
    let sim = TimingSim::new(&m);
    let n = 200;
    for (warps, saturated) in [(1usize, false), (2, false), (6, true), (8, true)] {
        let mut src = one_block(vec![dependent_chain(n); warps]);
        let r = sim.run(
            &mut src,
            &LaunchConfig::new_1d(1, 32 * warps as u32),
            res(32 * warps as u32),
        );
        let issue_bound = (n * warps) as f64 * (4.0 + sim.config().issue_overhead);
        let ratio = r.cycles / issue_bound;
        if saturated {
            assert!(ratio < 1.1, "{warps} warps: ratio {ratio}");
        } else {
            assert!(ratio > 1.5, "{warps} warps: ratio {ratio}");
        }
    }
}

#[test]
fn type_classes_have_table1_occupancies() {
    let m = machine();
    let sim = TimingSim::new(&m);
    let n = 300;
    let mut cycles = Vec::new();
    for class in InstrClass::ALL {
        let stream: Vec<TraceEntry> = (0..n).map(|_| entry(class)).collect();
        let mut src = one_block(vec![stream]);
        let r = sim.run(&mut src, &LaunchConfig::new_1d(1, 32), res(32));
        cycles.push(r.cycles);
    }
    // Type I < Type II < Type III < Type IV issue cost.
    assert!(cycles[0] < cycles[1]);
    assert!(cycles[1] < cycles[2]);
    assert!(cycles[2] < cycles[3]);
    // Type IV ≈ 32 + overhead cycles per instruction.
    let per = cycles[3] / n as f64;
    assert!((per - 32.75).abs() < 1.0, "type IV per-instr {per}");
}

#[test]
fn bank_conflicts_serialize_the_smem_port() {
    let m = machine();
    let sim = TimingSim::new(&m);
    let n = 300;
    let make = |half_txns: u16| -> Vec<TraceEntry> {
        (0..n)
            .map(|_| {
                let mut e = entry(InstrClass::TypeII);
                e.smem_half_txns = half_txns;
                e
            })
            .collect()
    };
    // Enough warps to saturate the port.
    let mut free = one_block(vec![make(2); 8]);
    let r_free = sim.run(&mut free, &LaunchConfig::new_1d(1, 256), res(256));
    let mut conf = one_block(vec![make(4); 8]);
    let r_conf = sim.run(&mut conf, &LaunchConfig::new_1d(1, 256), res(256));
    let ratio = r_conf.cycles / r_free.cycles;
    // 2-way conflicts serialize the shared port *and* replay through the
    // issue stage (GT200 behaviour), so the slowdown exceeds 2×.
    assert!(
        (2.0..=3.8).contains(&ratio),
        "2-way conflicts should cost ×2–3.8, got ×{ratio}"
    );
}

#[test]
fn barrier_synchronizes_warps() {
    let m = machine();
    let sim = TimingSim::new(&m);
    // Warp 0: short prologue; warp 1: long prologue; both bar then epilogue.
    let mut w0 = dependent_chain(10);
    let mut w1 = dependent_chain(100);
    let mut bar = entry(InstrClass::TypeII);
    bar.bar = true;
    w0.push(bar.clone());
    w1.push(bar);
    w0.extend(dependent_chain(10));
    w1.extend(dependent_chain(10));
    let mut src = one_block(vec![w0, w1]);
    let r = sim.run(&mut src, &LaunchConfig::new_1d(1, 64), res(64));
    // Total dominated by the long warp: 100×24 + barrier + 10×24.
    let expect = 110.0 * 24.0;
    assert!(r.cycles > expect * 0.95, "cycles {} vs {expect}", r.cycles);
    assert!(r.cycles < expect * 1.3, "cycles {} vs {expect}", r.cycles);
}

#[test]
fn gmem_saturates_cluster_pipe_bandwidth() {
    let m = machine();
    let sim = TimingSim::new(&m);
    // One block with 8 warps, each issuing 200 independent 128 B loads.
    let make_warp = || -> Vec<TraceEntry> {
        (0..200)
            .map(|i| {
                let mut e = entry(InstrClass::TypeII);
                e.dst = (i % 16) as u8;
                e.dst_n = 1;
                e.dst_lat = DstLatency::Gmem;
                e.gmem_load = true;
                e.gmem = Some(
                    vec![Transaction {
                        base: 4096 + i as u64 * 128,
                        size: 128,
                    }]
                    .into_boxed_slice(),
                );
                e
            })
            .collect()
    };
    let mut src = one_block((0..8).map(|_| make_warp()).collect());
    let r = sim.run(&mut src, &LaunchConfig::new_1d(1, 256), res(256));
    // One cluster's share: peak × efficiency / 10, minus transaction
    // overhead effects.
    let cluster_bw = m.peak_global_bandwidth() * sim.config().dram_efficiency / 10.0;
    let achieved = r.global_bandwidth();
    assert!(
        achieved > 0.6 * cluster_bw && achieved <= 1.01 * cluster_bw,
        "achieved {achieved:.3e} vs cluster {cluster_bw:.3e}"
    );
}

#[test]
fn blocks_fill_all_clusters() {
    let m = machine();
    let sim = TimingSim::new(&m);
    // 10 single-warp blocks land on 10 distinct clusters: same total time
    // as 1 block (plus nothing), while 11 blocks make one cluster do two.
    let chain = vec![dependent_chain(100)];
    let t1 = {
        let mut src = one_block(chain.clone());
        sim.run(&mut src, &LaunchConfig::new_1d(10, 32), res(32))
            .cycles
    };
    let t2 = {
        let mut src = one_block(chain);
        sim.run(&mut src, &LaunchConfig::new_1d(11, 32), res(32))
            .cycles
    };
    assert!(t2 > t1 * 0.99, "11th block must not be free: {t1} vs {t2}");
}

#[test]
fn waves_scale_with_occupancy() {
    let m = machine();
    let sim = TimingSim::new(&m);
    // Resources allowing 1 block/SM: 3 blocks fit a cluster at once.
    // 30 blocks on cluster 0 (uniform mode) → 10 waves.
    let chain = vec![dependent_chain(50)];
    let one_wave = {
        let mut src = one_block(chain.clone());
        let mut s = sim.clone();
        s.assume_uniform_clusters(true);
        s.run(
            &mut src,
            &LaunchConfig::new_1d(30, 32),
            KernelResources::new(8, 9000, 32),
        )
        .cycles
    };
    let ten_waves = {
        let mut src = one_block(chain);
        let mut s = sim.clone();
        s.assume_uniform_clusters(true);
        s.run(
            &mut src,
            &LaunchConfig::new_1d(300, 32),
            KernelResources::new(8, 9000, 32),
        )
        .cycles
    };
    let ratio = ten_waves / one_wave;
    assert!((8.0..=12.0).contains(&ratio), "wave scaling ratio {ratio}");
}

#[test]
fn uniform_cluster_mode_matches_full_simulation() {
    let m = machine();
    let base = TimingSim::new(&m);
    let chain: Vec<Vec<TraceEntry>> = vec![dependent_chain(80); 2];
    let full = {
        let mut src = one_block(chain.clone());
        base.run(&mut src, &LaunchConfig::new_1d(40, 64), res(64))
    };
    let fast = {
        let mut src = one_block(chain);
        let mut s = base.clone();
        s.assume_uniform_clusters(true);
        s.run(&mut src, &LaunchConfig::new_1d(40, 64), res(64))
    };
    let rel = (full.cycles - fast.cycles).abs() / full.cycles;
    assert!(rel < 0.01, "uniform-mode divergence {rel}");
}

#[test]
fn uniform_scaling_is_exact_on_divisible_grids() {
    // 20 blocks over GTX 285's 10 clusters: every cluster runs exactly 2
    // blocks, so the uniform-mode scale factor is the integer 10 and the
    // scaled counters must equal the full simulation's *exactly* — no
    // float round-trip allowed to shave an instruction or a byte.
    let m = machine();
    let make_warp = || -> Vec<TraceEntry> {
        (0..60)
            .map(|i| {
                let mut e = entry(InstrClass::TypeII);
                e.dst = (i % 16) as u8;
                e.dst_n = 1;
                if i % 3 == 0 {
                    e.dst_lat = DstLatency::Gmem;
                    e.gmem_load = true;
                    e.gmem = Some(
                        vec![Transaction {
                            base: 4096 + i as u64 * 64,
                            size: 64,
                        }]
                        .into_boxed_slice(),
                    );
                }
                e
            })
            .collect()
    };
    let warps: Vec<Vec<TraceEntry>> = vec![make_warp(); 2];
    let launch = LaunchConfig::new_1d(20, 64);
    let full = {
        let mut src = one_block(warps.clone());
        TimingSim::new(&m).run(&mut src, &launch, res(64))
    };
    let fast = {
        let mut src = one_block(warps);
        let mut s = TimingSim::new(&m);
        s.assume_uniform_clusters(true);
        s.run(&mut src, &launch, res(64))
    };
    assert_eq!(fast.issued, full.issued, "issued must scale exactly");
    assert_eq!(fast.gmem_bytes, full.gmem_bytes, "bytes must scale exactly");
    // Identical blocks: the totals divide evenly by the grid size.
    assert_eq!(fast.issued % 20, 0);
    assert_eq!(fast.gmem_bytes % 20, 0);
}

#[test]
fn texture_cache_accelerates_reused_loads() {
    let m = machine();
    // All warps hammer the same 1 KB of "vector" data.
    let make_warp = |seed: u64| -> Vec<TraceEntry> {
        (0..200u64)
            .map(|i| {
                let mut e = entry(InstrClass::TypeII);
                e.dst = (i % 16) as u8;
                e.dst_n = 1;
                e.dst_lat = DstLatency::Gmem;
                e.gmem_load = true;
                let base = 4096 + (seed * 37 + i * 29) % 1024 / 32 * 32;
                e.gmem = Some(vec![Transaction { base, size: 32 }].into_boxed_slice());
                e
            })
            .collect()
    };
    let warps: Vec<Vec<TraceEntry>> = (0..4).map(|w| make_warp(w as u64)).collect();
    let plain = {
        let sim = TimingSim::new(&m);
        let mut src = one_block(warps.clone());
        sim.run(&mut src, &LaunchConfig::new_1d(1, 128), res(128))
    };
    let cached = {
        let mut sim = TimingSim::new(&m);
        sim.set_texture_regions(vec![(4096, 1024)]);
        let mut src = one_block(warps);
        sim.run(&mut src, &LaunchConfig::new_1d(1, 128), res(128))
    };
    assert!(
        cached.tex_hit_rate > 0.9,
        "hit rate {}",
        cached.tex_hit_rate
    );
    assert!(
        cached.cycles < plain.cycles * 0.95,
        "cache should help: {} vs {}",
        cached.cycles,
        plain.cycles
    );
    // Hits bypass the cluster pipe entirely.
    assert!(
        cached.gmem_bytes < plain.gmem_bytes / 5,
        "pipe traffic should collapse: {} vs {}",
        cached.gmem_bytes,
        plain.gmem_bytes
    );
}

#[test]
fn empty_trace_finishes_instantly() {
    let m = machine();
    let sim = TimingSim::new(&m);
    let mut src = one_block(vec![Vec::new()]);
    let r = sim.run(&mut src, &LaunchConfig::new_1d(5, 32), res(32));
    assert_eq!(r.issued, 0);
    assert_eq!(r.cycles, 0.0);
}

#[test]
fn lazy_source_is_called_per_block() {
    let m = machine();
    let sim = TimingSim::new(&m);
    let mut calls = 0u32;
    {
        let mut src = TraceSource::Lazy(Box::new(|_b| {
            calls += 1;
            Arc::new(BlockTrace {
                warps: vec![dependent_chain(5)],
            })
        }));
        sim.run(&mut src, &LaunchConfig::new_1d(7, 32), res(32));
    }
    assert_eq!(calls, 7);
}
