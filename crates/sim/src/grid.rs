//! Launch configuration: grid and block shapes.

use gpa_hw::Machine;
use std::fmt;

/// A kernel launch shape: `grid` blocks of `block` threads, each up to 2-D
/// (the case studies use 1-D and 2-D launches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaunchConfig {
    /// Grid dimensions in blocks (x, y).
    pub grid: (u32, u32),
    /// Block dimensions in threads (x, y).
    pub block: (u32, u32),
}

impl LaunchConfig {
    /// 1-D launch: `grid_x` blocks of `block_x` threads.
    pub fn new_1d(grid_x: u32, block_x: u32) -> LaunchConfig {
        LaunchConfig {
            grid: (grid_x, 1),
            block: (block_x, 1),
        }
    }

    /// 2-D launch.
    pub fn new_2d(grid: (u32, u32), block: (u32, u32)) -> LaunchConfig {
        LaunchConfig { grid, block }
    }

    /// Total number of blocks.
    pub fn num_blocks(&self) -> u32 {
        self.grid.0 * self.grid.1
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block.0 * self.block.1
    }

    /// Warps per block on `machine` (partial warps round up).
    pub fn warps_per_block(&self, machine: &Machine) -> u32 {
        machine.warps_for_threads(self.threads_per_block())
    }

    /// Block coordinates of linear block id `b` (x-major, as CUDA
    /// enumerates).
    pub fn block_coords(&self, b: u32) -> (u32, u32) {
        (b % self.grid.0, b / self.grid.0)
    }

    /// Thread coordinates of linear thread id `t` within a block (x-major).
    pub fn thread_coords(&self, t: u32) -> (u32, u32) {
        (t % self.block.0, t / self.block.0)
    }

    /// Validate against hardware ceilings.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated limit.
    pub fn check(&self, machine: &Machine) -> Result<(), String> {
        if self.num_blocks() == 0 || self.threads_per_block() == 0 {
            return Err("empty launch".to_owned());
        }
        if self.threads_per_block() > machine.max_threads_per_block {
            return Err(format!(
                "{} threads/block exceeds the {}-thread limit",
                self.threads_per_block(),
                machine.max_threads_per_block
            ));
        }
        Ok(())
    }
}

impl fmt::Display for LaunchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<<<({}, {}), ({}, {})>>>",
            self.grid.0, self.grid.1, self.block.0, self.block.1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearization_is_x_major() {
        let l = LaunchConfig::new_2d((4, 3), (8, 4));
        assert_eq!(l.num_blocks(), 12);
        assert_eq!(l.threads_per_block(), 32);
        assert_eq!(l.block_coords(0), (0, 0));
        assert_eq!(l.block_coords(5), (1, 1));
        assert_eq!(l.thread_coords(9), (1, 1));
    }

    #[test]
    fn warp_rounding() {
        let m = Machine::gtx285();
        assert_eq!(LaunchConfig::new_1d(1, 33).warps_per_block(&m), 2);
        assert_eq!(LaunchConfig::new_1d(1, 256).warps_per_block(&m), 8);
    }

    #[test]
    fn limits_checked() {
        let m = Machine::gtx285();
        assert!(LaunchConfig::new_1d(10, 512).check(&m).is_ok());
        assert!(LaunchConfig::new_1d(10, 513).check(&m).is_err());
        assert!(LaunchConfig::new_1d(0, 64).check(&m).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(
            format!("{}", LaunchConfig::new_1d(512, 256)),
            "<<<(512, 1), (256, 1)>>>"
        );
    }
}
