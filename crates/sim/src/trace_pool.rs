//! Recycling of per-warp trace buffers across simulation runs.
//!
//! Trace collection is the allocation hot spot of the functional
//! simulator: every traced block allocates one `Vec<TraceEntry>` per
//! warp and grows it entry by entry, and a long-lived `gpa-serve`
//! process repeats that for every request. This module keeps a bounded
//! global pool of retired buffers: [`crate::func::FunctionalSim`] draws
//! from it whenever trace collection is on, and the workflow driver
//! returns a finished [`TraceSource`]'s buffers with [`reclaim`] once
//! the timing replay no longer needs them. Pooling never changes
//! results — a recycled buffer is `clear()`ed, and only its capacity
//! survives.

use crate::stats::{BlockTrace, TraceEntry};
use crate::timing::TraceSource;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Upper bound on pooled buffers: enough for every warp of a large
/// traced grid, small enough that retained capacity stays modest.
const MAX_POOLED: usize = 4096;

static POOL: Mutex<Vec<Vec<TraceEntry>>> = Mutex::new(Vec::new());
static REUSED: AtomicU64 = AtomicU64::new(0);

/// A cleared trace buffer — recycled when the pool has one, fresh
/// otherwise.
pub fn take() -> Vec<TraceEntry> {
    let recycled = POOL.lock().expect("trace pool poisoned").pop();
    match recycled {
        Some(buf) => {
            REUSED.fetch_add(1, Ordering::Relaxed);
            buf
        }
        None => Vec::new(),
    }
}

/// Retire one trace buffer into the pool. Buffers that never grew
/// carry no capacity worth keeping and are dropped, as is everything
/// past the pool bound.
pub fn give(mut buf: Vec<TraceEntry>) {
    if buf.capacity() == 0 {
        return;
    }
    buf.clear();
    let mut pool = POOL.lock().expect("trace pool poisoned");
    if pool.len() < MAX_POOLED {
        pool.push(buf);
    }
}

/// Retire every warp buffer of one block trace.
pub fn give_block(trace: BlockTrace) {
    for warp in trace.warps {
        give(warp);
    }
}

/// Return a finished trace source's buffers to the pool.
///
/// Only traces the caller exclusively owns are recycled (a cloned-out
/// `Arc` means someone still reads the trace, so it is left alone), and
/// [`TraceSource::Lazy`] owns nothing by construction.
pub fn reclaim(source: TraceSource<'_>) {
    match source {
        TraceSource::Homogeneous(t) => reclaim_arc(t),
        TraceSource::PerBlock(v) => v.into_iter().for_each(reclaim_arc),
        TraceSource::Lazy(_) => {}
    }
}

fn reclaim_arc(trace: Arc<BlockTrace>) {
    if let Ok(owned) = Arc::try_unwrap(trace) {
        give_block(owned);
    }
}

/// Buffers currently parked in the pool.
pub fn pooled() -> usize {
    POOL.lock().expect("trace pool poisoned").len()
}

/// Total buffer reuses since process start (monotone; tests assert
/// deltas rather than absolute values because the pool is global).
pub fn reuses() -> u64 {
    REUSED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DstLatency;
    use gpa_hw::InstrClass;

    fn entry() -> TraceEntry {
        TraceEntry {
            class: InstrClass::TypeI,
            dst: 0,
            dst_n: 1,
            srcs: [0xFF; 8],
            nsrcs: 0,
            dst_lat: DstLatency::Alu,
            smem_half_txns: 0,
            gmem: None,
            gmem_load: false,
            bar: false,
        }
    }

    #[test]
    fn retired_capacity_is_reused_and_contents_are_not() {
        let mut buf = Vec::with_capacity(64);
        buf.push(entry());
        give(buf);

        let before = reuses();
        // Drain until we get a recycled buffer back (other tests share
        // the global pool, so pop until capacity shows up).
        let mut got = take();
        while got.capacity() == 0 && reuses() > before {
            got = take();
        }
        assert!(got.capacity() > 0, "pooled capacity must come back");
        assert!(got.is_empty(), "recycled buffers must come back cleared");
        assert!(reuses() > before);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let before = pooled();
        give(Vec::new());
        assert_eq!(pooled(), before);
    }

    #[test]
    fn reclaim_recycles_exclusive_traces_and_skips_shared_ones() {
        let block = || BlockTrace {
            warps: vec![{
                let mut v = Vec::with_capacity(8);
                v.push(entry());
                v
            }],
        };

        let before = pooled();
        reclaim(TraceSource::Homogeneous(Arc::new(block())));
        assert!(pooled() > before, "exclusive trace must be recycled");

        // A trace someone still holds is left alone.
        let shared = Arc::new(block());
        let held = Arc::clone(&shared);
        let before = pooled();
        reclaim(TraceSource::PerBlock(vec![shared]));
        assert_eq!(pooled(), before, "shared trace must not be recycled");
        assert_eq!(held.warps.len(), 1);
    }
}
