//! Model tests against synthetic kernels with known bottlenecks.

use super::*;
use gpa_hw::KernelResources;
use gpa_isa::builder::KernelBuilder;
use gpa_isa::instr::{CmpOp, MemAddr, NumTy, Pred, SpecialReg, Src, Width};
use gpa_isa::Kernel;
use gpa_sim::{FunctionalSim, GlobalMemory, LaunchConfig, TimingSim, TraceSource};
use gpa_ubench::{MeasureOpts, ThroughputCurves};
use std::sync::Arc;
use std::sync::OnceLock;

fn machine() -> &'static Machine {
    static M: OnceLock<Machine> = OnceLock::new();
    M.get_or_init(Machine::gtx285)
}

fn curves() -> &'static ThroughputCurves {
    static C: OnceLock<ThroughputCurves> = OnceLock::new();
    C.get_or_init(|| ThroughputCurves::measure_with(machine(), MeasureOpts::quick()))
}

fn model() -> Model<'static> {
    Model::new(machine(), curves().clone())
}

/// Run a kernel functionally + on the timing simulator; return the model
/// input and the measured seconds.
fn run_case(
    kernel: &Kernel,
    launch: LaunchConfig,
    params: &[u32],
    gmem: &mut GlobalMemory,
) -> (crate::input::ModelInput, f64) {
    let m = machine();
    let mut sim = FunctionalSim::new(m, kernel, launch).unwrap();
    sim.set_params(params);
    sim.collect_traces(true);
    let out = sim.run(gmem).unwrap();
    let traces: Vec<Arc<gpa_sim::BlockTrace>> =
        out.traces.unwrap().into_iter().map(Arc::new).collect();
    let timing = TimingSim::new(m);
    let mut src = TraceSource::PerBlock(traces);
    let measured = timing.run(&mut src, &launch, kernel.resources);
    let input =
        crate::input::extract(m, &kernel.name, launch, kernel.resources, out.stats).unwrap();
    (input, measured.seconds)
}

/// Dense dependent-MAD loop: clearly instruction-pipeline-bound.
fn mad_kernel(iters: i32) -> Kernel {
    let mut b = KernelBuilder::new("mad_loop");
    b.set_threads(256);
    let acc = b.alloc_reg().unwrap();
    let one = b.alloc_reg().unwrap();
    let i = b.alloc_reg().unwrap();
    b.mov_imm_f32(acc, 1.0);
    b.mov_imm_f32(one, 1.0);
    b.mov_imm(i, 0);
    b.label("top");
    for _ in 0..16 {
        b.fmad(acc, Src::Reg(acc), Src::Reg(one), Src::Reg(one));
    }
    b.iadd(i, Src::Reg(i), Src::Imm(1));
    b.setp(Pred(0), CmpOp::Lt, NumTy::S32, Src::Reg(i), Src::Imm(iters));
    b.bra_if(Pred(0), false, "top");
    b.exit();
    b.declare_resources(KernelResources::new(8, 0, 256));
    b.finish().unwrap()
}

/// Stride-2 shared-memory load/store loop: shared-memory-bound with 2-way
/// bank conflicts.
fn conflicted_smem_kernel(iters: i32) -> Kernel {
    let mut b = KernelBuilder::new("smem_conflict");
    b.set_threads(256);
    let src_off = b.smem_alloc(2048, 4).unwrap() as i32;
    let dst_off = b.smem_alloc(2048, 4).unwrap() as i32;
    let addr = b.alloc_reg().unwrap();
    let tid = b.alloc_reg().unwrap();
    let v = b.alloc_reg().unwrap();
    let i = b.alloc_reg().unwrap();
    b.mov_imm(i, 0);
    b.s2r(tid, SpecialReg::TidX);
    // (tid & 63) * 8 bytes: stride-2 words → 2-way conflicts.
    b.and(addr, Src::Reg(tid), Src::Imm(63));
    b.shl(addr, Src::Reg(addr), Src::Imm(3));
    b.label("top");
    for slot in 0..8 {
        let byte = slot * 128;
        b.ld_shared(v, MemAddr::new(Some(addr), src_off + byte), Width::B32);
        b.st_shared(MemAddr::new(Some(addr), dst_off + byte), v, Width::B32);
    }
    b.iadd(i, Src::Reg(i), Src::Imm(1));
    b.setp(Pred(0), CmpOp::Lt, NumTy::S32, Src::Reg(i), Src::Imm(iters));
    b.bra_if(Pred(0), false, "top");
    b.exit();
    b.declare_resources(KernelResources::new(8, 4352, 256));
    b.finish().unwrap()
}

/// Streaming global loads: global-memory-bound.
fn streaming_kernel(loads_per_thread: u32) -> Kernel {
    let mut b = KernelBuilder::new("stream");
    b.set_threads(256);
    let buf_p = b.param_alloc();
    let addr = b.alloc_reg().unwrap();
    let tid = b.alloc_reg().unwrap();
    let tmp = b.alloc_reg().unwrap();
    let i = b.alloc_reg().unwrap();
    b.mov_imm(i, 0);
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(addr, SpecialReg::CtaIdX);
    b.s2r(tmp, SpecialReg::NTidX);
    b.imad(addr, Src::Reg(addr), Src::Reg(tmp), Src::Reg(tid));
    b.shl(addr, Src::Reg(addr), Src::Imm(2));
    b.ld_param(tmp, buf_p);
    b.iadd(addr, Src::Reg(addr), Src::Reg(tmp));
    let stride = b.alloc_reg().unwrap();
    b.mov_imm(stride, 0); // patched below via param-free constant
    let dsts: Vec<_> = (0..4).map(|_| b.alloc_reg().unwrap()).collect();
    b.label("top");
    for (j, d) in dsts.iter().enumerate() {
        b.ld_global(*d, MemAddr::new(Some(addr), j as i32 * 1024), Width::B32);
    }
    b.iadd(i, Src::Reg(i), Src::Imm(4));
    b.setp(
        Pred(0),
        CmpOp::Lt,
        NumTy::S32,
        Src::Reg(i),
        Src::Imm(loads_per_thread as i32),
    );
    b.bra_if(Pred(0), false, "top");
    b.exit();
    b.declare_resources(KernelResources::new(12, 0, 256));
    b.finish().unwrap()
}

#[test]
fn component_times_ordering() {
    let t = ComponentTimes {
        instr: 3.0,
        smem: 2.0,
        gmem: 1.0,
        atomic: 0.0,
    };
    assert_eq!(t.bottleneck(), Component::InstructionPipeline);
    assert_eq!(t.second_bottleneck(), Component::SharedMemory);
    assert_eq!(t.max(), 3.0);
    let t = ComponentTimes {
        instr: 1.0,
        smem: 1.0,
        gmem: 5.0,
        atomic: 0.0,
    };
    assert_eq!(t.bottleneck(), Component::GlobalMemory);
    assert_eq!(t.get(Component::SharedMemory), 1.0);
    let t = ComponentTimes {
        instr: 1.0,
        smem: 2.0,
        gmem: 1.5,
        atomic: 4.0,
    };
    assert_eq!(t.bottleneck(), Component::AtomicUnit);
    assert_eq!(t.second_bottleneck(), Component::SharedMemory);
    assert_eq!(t.max(), 4.0);
    assert_eq!(t.get(Component::AtomicUnit), 4.0);
}

#[test]
fn mad_loop_is_instruction_bound_and_predicted_accurately() {
    let k = mad_kernel(40);
    let launch = LaunchConfig::new_1d(120, 256);
    let mut gmem = GlobalMemory::new();
    let (input, measured) = run_case(&k, launch, &[], &mut gmem);
    let mut model = model();
    let a = model.analyze(&input);
    assert_eq!(a.bottleneck, Component::InstructionPipeline);
    let err = (a.predicted_seconds - measured).abs() / measured;
    assert!(
        err < 0.20,
        "predicted {:.4e}, measured {:.4e}, err {:.0}%",
        a.predicted_seconds,
        measured,
        err * 100.0
    );
}

#[test]
fn conflicted_kernel_is_shared_memory_bound() {
    let k = conflicted_smem_kernel(30);
    let launch = LaunchConfig::new_1d(90, 256);
    let mut gmem = GlobalMemory::new();
    let (input, measured) = run_case(&k, launch, &[], &mut gmem);
    let mut model = model();
    let a = model.analyze(&input);
    assert_eq!(a.bottleneck, Component::SharedMemory);
    assert!(
        a.bank_conflict_factor > 1.8,
        "factor {}",
        a.bank_conflict_factor
    );
    let err = (a.predicted_seconds - measured).abs() / measured;
    // Conflict replay costs in the hardware exceed what the transaction ×
    // bandwidth model charges (the paper's CR prediction ran ~5% high on
    // the same arithmetic; our synthetic machine exposes a little more).
    assert!(
        err < 0.45,
        "predicted {:.4e}, measured {:.4e}, err {:.0}%",
        a.predicted_seconds,
        measured,
        err * 100.0
    );
    // The stage causes should name bank conflicts.
    assert!(a.stages.iter().any(|s| s
        .causes
        .iter()
        .any(|c| matches!(c, Cause::BankConflicts { .. }))));
}

#[test]
fn no_bank_conflict_what_if_predicts_speedup() {
    let k = conflicted_smem_kernel(30);
    let launch = LaunchConfig::new_1d(90, 256);
    let mut gmem = GlobalMemory::new();
    let (input, _measured) = run_case(&k, launch, &[], &mut gmem);
    let mut model = model();
    let w = model.what_if_no_bank_conflicts(&input);
    assert!(
        w.speedup > 1.3 && w.speedup < 2.5,
        "expected ~2× potential, got ×{:.2}",
        w.speedup
    );
}

#[test]
fn streaming_kernel_is_global_memory_bound() {
    let k = streaming_kernel(32);
    let launch = LaunchConfig::new_1d(20, 256);
    let mut gmem = GlobalMemory::new();
    let bytes = 20u64 * 256 * 4 + 4 * 1024 + 4096;
    let buf = gmem.alloc(bytes, 128);
    let (input, measured) = run_case(&k, launch, &[buf as u32], &mut gmem);
    let mut model = model();
    let a = model.analyze(&input);
    assert_eq!(a.bottleneck, Component::GlobalMemory);
    let err = (a.predicted_seconds - measured).abs() / measured;
    assert!(
        err < 0.30,
        "predicted {:.4e}, measured {:.4e}, err {:.0}%",
        a.predicted_seconds,
        measured,
        err * 100.0
    );
}

/// All 256 threads hammer one shared word with atomic adds: the atomic
/// unit dominates and privatization is the predicted fix.
fn atomic_hotspot_kernel(iters: i32) -> Kernel {
    let mut b = KernelBuilder::new("hotspot");
    b.set_threads(256);
    let off = b.smem_alloc(4, 4).unwrap() as i32;
    let one = b.alloc_reg().unwrap();
    let old = b.alloc_reg().unwrap();
    let i = b.alloc_reg().unwrap();
    b.mov_imm(one, 1);
    b.mov_imm(i, 0);
    b.label("top");
    for _ in 0..4 {
        b.atom_shared_add(old, MemAddr::new(None, off), one);
    }
    b.iadd(i, Src::Reg(i), Src::Imm(1));
    b.setp(Pred(0), CmpOp::Lt, NumTy::S32, Src::Reg(i), Src::Imm(iters));
    b.bra_if(Pred(0), false, "top");
    b.exit();
    b.declare_resources(KernelResources::new(8, 4, 256));
    b.finish().unwrap()
}

#[test]
fn atomic_hotspot_is_atomic_unit_bound() {
    let k = atomic_hotspot_kernel(10);
    let launch = LaunchConfig::new_1d(60, 256);
    let mut gmem = GlobalMemory::new();
    let (input, _measured) = run_case(&k, launch, &[], &mut gmem);
    let mut model = model();
    let a = model.analyze(&input);
    assert_eq!(a.bottleneck, Component::AtomicUnit);
    assert!(
        a.atomic_contention_factor > 10.0,
        "same-word atomics from 16-lane half-warps should serialize ~16×, got ×{:.2}",
        a.atomic_contention_factor
    );
    assert!(a.stages.iter().any(|s| s
        .causes
        .iter()
        .any(|c| matches!(c, Cause::AtomicContention { .. }))));
    // Privatizing the counter removes the serialization excess entirely.
    let w = model.what_if_privatized_atomics(&input);
    assert!(
        w.speedup > 2.0,
        "privatization should pay off heavily, got ×{:.2}",
        w.speedup
    );
}

#[test]
fn single_block_occupancy_serializes_stages() {
    // Two barrier-separated phases with very different character; declared
    // shared memory forces one block per SM.
    let mut b = KernelBuilder::new("two_stage");
    b.set_threads(256);
    let _ = b.smem_alloc(9000, 4).unwrap();
    let acc = b.alloc_reg().unwrap();
    let one = b.alloc_reg().unwrap();
    let i = b.alloc_reg().unwrap();
    b.mov_imm_f32(acc, 1.0);
    b.mov_imm_f32(one, 1.0);
    b.mov_imm(i, 0);
    b.label("p1");
    for _ in 0..8 {
        b.fmad(acc, Src::Reg(acc), Src::Reg(one), Src::Reg(one));
    }
    b.iadd(i, Src::Reg(i), Src::Imm(1));
    b.setp(Pred(0), CmpOp::Lt, NumTy::S32, Src::Reg(i), Src::Imm(20));
    b.bra_if(Pred(0), false, "p1");
    b.bar();
    let tid = b.alloc_reg().unwrap();
    let addr = b.alloc_reg().unwrap();
    let v = b.alloc_reg().unwrap();
    b.s2r(tid, SpecialReg::TidX);
    b.and(addr, Src::Reg(tid), Src::Imm(63));
    b.shl(addr, Src::Reg(addr), Src::Imm(3)); // stride 2: 2-way conflicts
    b.mov_imm(i, 0);
    b.label("p2");
    for slot in 0..8 {
        b.ld_shared(v, MemAddr::new(Some(addr), slot * 256), Width::B32);
        b.st_shared(MemAddr::new(Some(addr), 4096 + slot * 256), v, Width::B32);
    }
    b.iadd(i, Src::Reg(i), Src::Imm(1));
    b.setp(Pred(0), CmpOp::Lt, NumTy::S32, Src::Reg(i), Src::Imm(20));
    b.bra_if(Pred(0), false, "p2");
    b.exit();
    b.declare_resources(KernelResources::new(10, 9000, 256));
    let k = b.finish().unwrap();

    let launch = LaunchConfig::new_1d(60, 256);
    let mut gmem = GlobalMemory::new();
    let (input, _measured) = run_case(&k, launch, &[], &mut gmem);
    assert_eq!(input.occupancy.blocks, 1);
    let mut model = model();
    let a = model.analyze(&input);
    assert_eq!(a.stages.len(), 2);
    // Serialized prediction: the sum of the per-stage maxima, and that is
    // what the paper's rule selects for one resident block.
    let expect: f64 = a.stages.iter().map(|s| s.times.max()).sum();
    assert!((a.serialized_seconds - expect).abs() < 1e-12);
    assert_eq!(a.predicted_seconds, a.serialized_seconds);
    assert!(a.serialized_seconds >= a.overlapped_seconds);
    // Stage 0 is instruction-bound, stage 1 shared-memory-bound.
    assert_eq!(a.stages[0].bottleneck, Component::InstructionPipeline);
    assert_eq!(a.stages[1].bottleneck, Component::SharedMemory);
}

#[test]
fn max_blocks_what_if_raises_occupancy() {
    // 2 warps per 64-thread block, tiny footprint: the 8-block ceiling
    // caps the SM at 16 warps (paper §5.1). Allowing 16 blocks doubles
    // warp parallelism and must not slow anything down.
    let mut b = KernelBuilder::new("small_blocks");
    b.set_threads(64);
    let acc = b.alloc_reg().unwrap();
    let one = b.alloc_reg().unwrap();
    let i = b.alloc_reg().unwrap();
    b.mov_imm_f32(acc, 1.0);
    b.mov_imm_f32(one, 1.0);
    b.mov_imm(i, 0);
    b.label("top");
    for _ in 0..8 {
        b.fmad(acc, Src::Reg(acc), Src::Reg(one), Src::Reg(one));
    }
    b.iadd(i, Src::Reg(i), Src::Imm(1));
    b.setp(Pred(0), CmpOp::Lt, NumTy::S32, Src::Reg(i), Src::Imm(30));
    b.bra_if(Pred(0), false, "top");
    b.exit();
    b.declare_resources(KernelResources::new(8, 348, 64));
    let k = b.finish().unwrap();

    let launch = LaunchConfig::new_1d(240, 64);
    let mut gmem = GlobalMemory::new();
    let (input, _measured) = run_case(&k, launch, &[], &mut gmem);
    assert_eq!(input.occupancy.blocks, 8);
    assert_eq!(input.occupancy.active_warps, 16);
    let mut model = model();
    let w = model.what_if_max_blocks(&input, 16);
    assert!(
        w.speedup >= 1.0,
        "more blocks must not hurt: ×{:.3}",
        w.speedup
    );
}

#[test]
fn reports_render() {
    let k = mad_kernel(10);
    let launch = LaunchConfig::new_1d(30, 256);
    let mut gmem = GlobalMemory::new();
    let (input, measured) = run_case(&k, launch, &[], &mut gmem);
    let mut model = model();
    let a = model.analyze(&input);
    let text = crate::report::render(&a);
    assert!(text.contains("mad_loop"));
    assert!(text.contains("bottleneck"));
    let text2 = crate::report::render_with_measured(&a, measured);
    assert!(text2.contains("error"));
    let w = model.what_if_no_bank_conflicts(&input);
    let text3 = crate::report::render_what_ifs(&[w]);
    assert!(text3.contains("what-if"));
}
