#![warn(missing_docs)]

//! The quantitative GPU performance model (the paper's contribution).
//!
//! Workflow (paper Figure 1): run a kernel on the functional simulator to
//! obtain dynamic statistics, [`extract`] them into a [`ModelInput`], and
//! feed that to [`Model::analyze`]. The analysis predicts the time spent in
//! each of the three components — **instruction pipeline**, **shared
//! memory**, **global memory** — identifies the bottleneck (the component
//! with the largest time; the others are assumed hidden by overlap), splits
//! the program into synchronization stages when only one block is resident,
//! and attaches the paper's §3 cause diagnoses plus what-if estimates
//! ([`Model::what_if_no_bank_conflicts`] and friends) for the benefit of
//! removing each bottleneck.
//!
//! ```no_run
//! use gpa_core::{extract, Model};
//! use gpa_hw::{KernelResources, Machine};
//! use gpa_ubench::{MeasureOpts, ThroughputCurves};
//! # fn get_stats() -> gpa_sim::DynamicStats { unimplemented!() }
//!
//! let machine = Machine::gtx285();
//! let curves = ThroughputCurves::measure_with(&machine, MeasureOpts::quick());
//! let mut model = Model::new(&machine, curves);
//! let stats = get_stats(); // from FunctionalSim::run
//! let input = extract(
//!     &machine,
//!     "my_kernel",
//!     gpa_sim::LaunchConfig::new_1d(512, 256),
//!     KernelResources::new(12, 8448, 256),
//!     stats,
//! )
//! .expect("statistics match the launch");
//! let analysis = model.analyze(&input);
//! println!("{}", gpa_core::report::render(&analysis));
//! ```

pub mod advisor;
pub mod analysis;
pub mod input;
pub mod report;
pub mod traditional;

pub use advisor::WhatIf;
pub use analysis::{Analysis, Cause, Component, ComponentTimes, Model, StageAnalysis};
pub use input::{extract, InputError, ModelInput};
pub use traditional::{traditional_analysis, TraditionalAnalysis, TraditionalVerdict};
