//! The three-component throughput model and bottleneck analysis (paper §3).

use crate::input::ModelInput;
use gpa_hw::{InstrClass, Machine};
use gpa_sim::stats::{StageStats, GRAN_GT200};
use gpa_ubench::gmem::GmemConfig;
use gpa_ubench::{GmemBench, MeasureOpts, ThroughputCurves};
use std::borrow::Cow;
use std::fmt;

/// Relative cost of one serialized atomic transaction against one plain
/// shared-memory transaction: a read plus a write through the bank.
const ATOMIC_RMW_COST: f64 = 2.0;

/// The GPU execution components the model prices: the paper's three (§3)
/// plus the atomic unit, which serializes conflicting read-modify-write
/// updates to the same shared-memory word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Instruction issue/execution.
    InstructionPipeline,
    /// On-chip shared memory.
    SharedMemory,
    /// Off-chip global memory.
    GlobalMemory,
    /// Shared-memory atomic unit (contended read-modify-write traffic).
    AtomicUnit,
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Component::InstructionPipeline => "instruction pipeline",
            Component::SharedMemory => "shared memory",
            Component::GlobalMemory => "global memory",
            Component::AtomicUnit => "atomic unit",
        };
        f.write_str(s)
    }
}

/// Predicted seconds per component.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ComponentTimes {
    /// Instruction-pipeline seconds.
    pub instr: f64,
    /// Shared-memory seconds.
    pub smem: f64,
    /// Global-memory seconds.
    pub gmem: f64,
    /// Atomic-unit seconds (contended shared read-modify-write traffic).
    pub atomic: f64,
}

impl ComponentTimes {
    /// Time of the named component.
    pub fn get(&self, c: Component) -> f64 {
        match c {
            Component::InstructionPipeline => self.instr,
            Component::SharedMemory => self.smem,
            Component::GlobalMemory => self.gmem,
            Component::AtomicUnit => self.atomic,
        }
    }

    /// The dominating time (the paper's perfect-overlap assumption).
    pub fn max(&self) -> f64 {
        self.instr.max(self.smem).max(self.gmem).max(self.atomic)
    }

    /// The dominating component.
    pub fn bottleneck(&self) -> Component {
        if self.gmem >= self.instr && self.gmem >= self.smem && self.gmem >= self.atomic {
            Component::GlobalMemory
        } else if self.atomic >= self.instr && self.atomic >= self.smem {
            Component::AtomicUnit
        } else if self.smem >= self.instr {
            Component::SharedMemory
        } else {
            Component::InstructionPipeline
        }
    }

    /// The runner-up: what becomes the bottleneck if the current one is
    /// removed (paper §3: "we can further infer … the next component that
    /// becomes the new bottleneck").
    pub fn second_bottleneck(&self) -> Component {
        let b = self.bottleneck();
        [
            Component::AtomicUnit,
            Component::GlobalMemory,
            Component::SharedMemory,
            Component::InstructionPipeline,
        ]
        .into_iter()
        .filter(|c| *c != b)
        .max_by(|a, z| self.get(*a).total_cmp(&self.get(*z)))
        .expect("three candidates remain")
    }
}

/// Bottleneck causes, following the paper's §3 catalogue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cause {
    /// Few of the issued instructions do "actual computation".
    LowComputationalDensity {
        /// MAD fraction of all instructions.
        density: f64,
    },
    /// A large share of Type III/IV (expensive) instructions.
    ExpensiveInstructions {
        /// Fraction of instructions in classes III and IV.
        fraction: f64,
    },
    /// Too few warps to cover the instruction pipeline latency.
    InsufficientWarpsForPipeline {
        /// Warps per SM during the stage.
        warps: u32,
    },
    /// Shared-memory bank conflicts serialize accesses.
    BankConflicts {
        /// Actual over conflict-free transactions (1.0 = none).
        factor: f64,
    },
    /// Too few warps to cover the shared-memory pipeline latency.
    InsufficientWarpsForSharedMemory {
        /// Warps per SM issuing shared accesses during the stage.
        warps: u32,
    },
    /// Global accesses waste transaction bytes.
    UncoalescedAccesses {
        /// Requested over transferred bytes (1.0 = perfectly coalesced).
        efficiency: f64,
    },
    /// A finer transaction granularity would transfer far fewer bytes
    /// (paper §5.3's 16-byte experiment).
    LargeTransactionGranularity {
        /// Bytes at 32 B granularity over bytes at 16 B granularity.
        reduction_at_16b: f64,
    },
    /// Not enough concurrent memory transactions to cover DRAM latency.
    InsufficientMemoryParallelism {
        /// Achieved fraction of the machine's effective peak bandwidth.
        bandwidth_fraction: f64,
    },
    /// Conflicting shared-memory atomics serialize within the warp.
    AtomicContention {
        /// Actual over contention-free atomic transactions (1.0 = none).
        factor: f64,
    },
}

impl fmt::Display for Cause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cause::LowComputationalDensity { density } => {
                write!(f, "low computational density ({:.0}% MAD)", density * 100.0)
            }
            Cause::ExpensiveInstructions { fraction } => {
                write!(
                    f,
                    "expensive (Type III/IV) instructions ({:.0}%)",
                    fraction * 100.0
                )
            }
            Cause::InsufficientWarpsForPipeline { warps } => {
                write!(
                    f,
                    "insufficient warps for the instruction pipeline ({warps}/SM)"
                )
            }
            Cause::BankConflicts { factor } => {
                write!(f, "bank conflicts (×{factor:.2} transactions)")
            }
            Cause::InsufficientWarpsForSharedMemory { warps } => {
                write!(f, "insufficient warps for shared memory ({warps}/SM)")
            }
            Cause::UncoalescedAccesses { efficiency } => {
                write!(
                    f,
                    "uncoalesced accesses ({:.0}% efficiency)",
                    efficiency * 100.0
                )
            }
            Cause::LargeTransactionGranularity { reduction_at_16b } => {
                write!(
                    f,
                    "large transaction granularity (16 B transactions would cut bytes ×{reduction_at_16b:.2})"
                )
            }
            Cause::InsufficientMemoryParallelism { bandwidth_fraction } => {
                write!(
                    f,
                    "insufficient memory parallelism ({:.0}% of effective bandwidth)",
                    bandwidth_fraction * 100.0
                )
            }
            Cause::AtomicContention { factor } => {
                write!(
                    f,
                    "atomic contention (×{factor:.2} serialization) — privatize \
                     updates per warp/block or pad the shared layout"
                )
            }
        }
    }
}

/// Analysis of one synchronization stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageAnalysis {
    /// Stage index (barrier intervals, 0-based).
    pub stage: usize,
    /// Predicted component times.
    pub times: ComponentTimes,
    /// The stage's bottleneck.
    pub bottleneck: Component,
    /// Warps per SM issuing instructions during this stage.
    pub warps_instr: u32,
    /// Warps per SM issuing shared accesses during this stage.
    pub warps_smem: u32,
    /// Instruction throughput used (warp-instr/s, whole GPU).
    pub instr_throughput: f64,
    /// Shared bandwidth used (bytes/s, whole GPU) — paper Figure 7a.
    pub smem_bandwidth: f64,
    /// Global bandwidth used (bytes/s), 0 when the stage has no traffic.
    pub gmem_bandwidth: f64,
    /// Diagnosed causes for the stage bottleneck.
    pub causes: Vec<Cause>,
}

/// Complete model output for one launch.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Kernel name.
    pub kernel_name: String,
    /// Machine name.
    pub machine_name: String,
    /// Resident blocks per SM.
    pub resident_blocks: u32,
    /// Resident warps per SM.
    pub resident_warps: u32,
    /// Per-stage analyses.
    pub stages: Vec<StageAnalysis>,
    /// Whole-program component times (aggregate counts).
    pub totals: ComponentTimes,
    /// Σ over stages of the stage maxima (single-resident-block rule).
    pub serialized_seconds: f64,
    /// max of the whole-program component times (multi-block rule).
    pub overlapped_seconds: f64,
    /// The paper's prediction: `serialized` when one block is resident,
    /// `overlapped` otherwise (§3).
    pub predicted_seconds: f64,
    /// Per-stage maxima summed into each stage's bottleneck component —
    /// the decomposition of paper Figures 6 and 8 ("the time of CR is
    /// mainly dominated by shared memory access").
    pub serialized_attribution: ComponentTimes,
    /// Program bottleneck: for serialized (single-resident-block) programs
    /// the component that dominates [`Analysis::serialized_attribution`];
    /// otherwise the largest whole-program component time.
    pub bottleneck: Component,
    /// What would bind next if the bottleneck were removed.
    pub next_bottleneck: Component,
    /// Whole-program computational density (MAD fraction).
    pub computational_density: f64,
    /// Whole-program bank-conflict factor.
    pub bank_conflict_factor: f64,
    /// Whole-program coalescing efficiency at GT200 granularity.
    pub coalescing_efficiency: f64,
    /// Whole-program atomic contention factor (1.0 = contention-free).
    pub atomic_contention_factor: f64,
}

/// The performance model: measured curves + the synthetic global-memory
/// benchmark, applied to extracted inputs.
#[derive(Debug)]
pub struct Model<'m> {
    machine: &'m Machine,
    curves: Cow<'m, ThroughputCurves>,
    gmem_bench: GmemBench<'m>,
}

impl<'m> Model<'m> {
    /// Build a model from previously measured curves, taking ownership.
    pub fn new(machine: &'m Machine, curves: ThroughputCurves) -> Model<'m> {
        Model {
            machine,
            curves: Cow::Owned(curves),
            gmem_bench: GmemBench::new(machine),
        }
    }

    /// Build a model borrowing long-lived curves — no copy, so sessions
    /// that answer many queries against one calibration (the
    /// `gpa-service` `Analyzer`) can build a per-query model for free.
    pub fn with_curves(machine: &'m Machine, curves: &'m ThroughputCurves) -> Model<'m> {
        Model {
            machine,
            curves: Cow::Borrowed(curves),
            gmem_bench: GmemBench::new(machine),
        }
    }

    /// Build a model, measuring curves at reduced (test) effort.
    pub fn with_quick_calibration(machine: &'m Machine) -> Model<'m> {
        Model::with_calibration(machine, MeasureOpts::quick())
    }

    /// Build a model, measuring curves with explicit effort options.
    ///
    /// `opts.threads` shards the calibration's independent warp sample
    /// points across worker threads; the measured curves — and therefore
    /// every analysis — are bit-identical for any thread count.
    pub fn with_calibration(machine: &'m Machine, opts: MeasureOpts) -> Model<'m> {
        let curves = ThroughputCurves::measure_with(machine, opts);
        Model::new(machine, curves)
    }

    /// The curves in use.
    pub fn curves(&self) -> &ThroughputCurves {
        &self.curves
    }

    /// The machine being modeled.
    pub fn machine(&self) -> &Machine {
        self.machine
    }

    /// Run the model on one extracted launch.
    pub fn analyze(&mut self, input: &ModelInput) -> Analysis {
        let blocks = input.stats.blocks.max(1);
        let mut stages = Vec::with_capacity(input.stats.stages.len());
        let mut serialized = 0.0;
        for (i, s) in input.stats.stages.iter().enumerate() {
            let sa = self.analyze_stage(input, i, s);
            serialized += sa.times.max();
            stages.push(sa);
        }

        let total_stats = input.stats.total();
        let total_sa = self.analyze_stage(input, usize::MAX, &total_stats);
        let totals = total_sa.times;
        let overlapped = totals.max();

        // Paper §3: one resident block ⇒ barrier-separated stages
        // serialize; multiple resident blocks ⇒ stages from different
        // blocks overlap, use the whole-program bottleneck.
        let predicted = if input.occupancy.blocks <= 1 {
            serialized
        } else {
            overlapped
        };

        let mut attribution = ComponentTimes::default();
        for sa in &stages {
            match sa.bottleneck {
                Component::InstructionPipeline => attribution.instr += sa.times.max(),
                Component::SharedMemory => attribution.smem += sa.times.max(),
                Component::GlobalMemory => attribution.gmem += sa.times.max(),
                Component::AtomicUnit => attribution.atomic += sa.times.max(),
            }
        }
        let serialized_mode = input.occupancy.blocks <= 1 && stages.len() > 1;
        let bottleneck = if serialized_mode {
            attribution.bottleneck()
        } else {
            totals.bottleneck()
        };
        let next_bottleneck = if serialized_mode {
            attribution.second_bottleneck()
        } else {
            totals.second_bottleneck()
        };

        let _ = blocks;
        Analysis {
            kernel_name: input.kernel_name.clone(),
            machine_name: self.machine.name.clone(),
            resident_blocks: input.occupancy.blocks,
            resident_warps: input.occupancy.active_warps,
            stages,
            totals,
            serialized_seconds: serialized,
            overlapped_seconds: overlapped,
            predicted_seconds: predicted,
            serialized_attribution: attribution,
            bottleneck,
            next_bottleneck,
            computational_density: total_stats.computational_density(),
            bank_conflict_factor: total_stats.bank_conflict_factor(),
            coalescing_efficiency: total_stats.coalesce_efficiency(GRAN_GT200),
            atomic_contention_factor: total_stats.atomic_contention_factor(),
        }
    }

    fn analyze_stage(&mut self, input: &ModelInput, stage: usize, s: &StageStats) -> StageAnalysis {
        let blocks = input.stats.blocks.max(1);
        let m = self.machine;

        // Warp-level parallelism during the stage: per-block active warps
        // times resident blocks (paper §5.2 reads per-step warp counts).
        // Small grids cannot fill every SM to its occupancy ceiling; the
        // most-loaded SM gets ceil(blocks / num_sms).
        let resident = input
            .occupancy
            .blocks
            .min((blocks as f64 / f64::from(m.num_sms)).ceil() as u32)
            .max(1);
        let per_block_any = (s.warps_any as f64 / blocks as f64).round() as u32;
        let per_block_smem = (s.warps_smem as f64 / blocks as f64).round() as u32;
        let warps_instr = (per_block_any * resident).clamp(1, m.max_warps_per_sm);
        let warps_smem = (per_block_smem * resident).clamp(1, m.max_warps_per_sm);

        // Fraction of SMs covered by the launch.
        let coverage = (blocks as f64 / f64::from(m.num_sms)).min(1.0);

        // Instruction pipeline: linear combination over classes (paper §3).
        let mut instr_time = 0.0;
        for class in InstrClass::ALL {
            let n = s.instr_by_class[class.index()];
            if n > 0 {
                instr_time += n as f64 / self.curves.instruction_throughput(class, warps_instr);
            }
        }
        instr_time /= coverage;
        let instr_throughput = self
            .curves
            .instruction_throughput(InstrClass::TypeII, warps_instr);

        // Shared memory: conflict-corrected transactions over the measured
        // bandwidth at this stage's warp parallelism (paper §4.2). Atomic
        // traffic is folded into the shared counters because it occupies
        // the same pipeline.
        let smem_bandwidth = self.curves.shared_bandwidth(warps_smem);
        let smem_bytes = s.smem_warp_equiv() * f64::from(m.warp_access_bytes());
        let smem_time = smem_bytes / smem_bandwidth / coverage;

        // Atomic unit: the atomic share of the shared pipeline, priced at
        // the read-modify-write cost (each serialized transaction performs
        // a read and a write through the bank). The component overtakes
        // plain shared traffic exactly when contended atomics dominate.
        let atomic_bytes =
            s.atomic_warp_equiv() * f64::from(m.warp_access_bytes()) * ATOMIC_RMW_COST;
        let atomic_time = atomic_bytes / smem_bandwidth / coverage;

        // Global memory: run the synthetic benchmark at the same
        // configuration (paper §4.3).
        let hw = &s.gmem[GRAN_GT200];
        let (gmem_time, gmem_bandwidth) = if hw.bytes == 0 {
            (0.0, 0.0)
        } else {
            let threads_total = blocks * u64::from(input.launch.threads_per_block());
            let per_thread = (hw.bytes as f64 / threads_total as f64 / 4.0).round() as u32;
            let mpt = per_thread.clamp(1, 256);
            // Saturation is reached well before 60 blocks; beyond that the
            // cluster imbalance is negligible, so cap the synthetic run.
            let bench_blocks = if blocks <= 60 { blocks as u32 } else { 60 };
            let cfg = GmemConfig::new(bench_blocks, input.launch.threads_per_block(), mpt);
            let bw = self.gmem_bench.bandwidth(cfg);
            (hw.bytes as f64 / bw, bw)
        };

        let times = ComponentTimes {
            instr: instr_time,
            smem: smem_time,
            gmem: gmem_time,
            atomic: atomic_time,
        };
        let bottleneck = times.bottleneck();
        let causes = self.diagnose(s, bottleneck, warps_instr, warps_smem, gmem_bandwidth);

        StageAnalysis {
            stage,
            times,
            bottleneck,
            warps_instr,
            warps_smem,
            instr_throughput,
            smem_bandwidth,
            gmem_bandwidth,
            causes,
        }
    }

    fn diagnose(
        &self,
        s: &StageStats,
        bottleneck: Component,
        warps_instr: u32,
        warps_smem: u32,
        gmem_bw: f64,
    ) -> Vec<Cause> {
        let mut causes = Vec::new();
        match bottleneck {
            Component::InstructionPipeline => {
                let density = s.computational_density();
                if density < 0.5 && s.instr_total() > 0 {
                    causes.push(Cause::LowComputationalDensity { density });
                }
                let expensive = (s.instr(InstrClass::TypeIII) + s.instr(InstrClass::TypeIV)) as f64
                    / s.instr_total().max(1) as f64;
                if expensive > 0.1 {
                    causes.push(Cause::ExpensiveInstructions {
                        fraction: expensive,
                    });
                }
                if warps_instr < 6 {
                    causes.push(Cause::InsufficientWarpsForPipeline { warps: warps_instr });
                }
            }
            Component::SharedMemory => {
                let factor = s.bank_conflict_factor();
                if factor > 1.1 {
                    causes.push(Cause::BankConflicts { factor });
                }
                if warps_smem < 12 {
                    causes.push(Cause::InsufficientWarpsForSharedMemory { warps: warps_smem });
                }
            }
            Component::AtomicUnit => {
                let factor = s.atomic_contention_factor();
                if factor > 1.1 {
                    causes.push(Cause::AtomicContention { factor });
                }
                if warps_smem < 12 {
                    causes.push(Cause::InsufficientWarpsForSharedMemory { warps: warps_smem });
                }
            }
            Component::GlobalMemory => {
                let eff = s.coalesce_efficiency(GRAN_GT200);
                if eff < 0.9 {
                    causes.push(Cause::UncoalescedAccesses { efficiency: eff });
                    let b32 = s.gmem[0].bytes.max(1) as f64;
                    let b16 = s.gmem[1].bytes.max(1) as f64;
                    if b32 / b16 > 1.15 {
                        causes.push(Cause::LargeTransactionGranularity {
                            reduction_at_16b: b32 / b16,
                        });
                    }
                }
                let effective = self.machine.peak_global_bandwidth() * 0.8;
                if gmem_bw > 0.0 && gmem_bw < 0.6 * effective {
                    causes.push(Cause::InsufficientMemoryParallelism {
                        bandwidth_fraction: gmem_bw / effective,
                    });
                }
            }
        }
        causes
    }
}

#[cfg(test)]
#[path = "analysis_tests.rs"]
mod analysis_tests;
