//! Plain-text rendering of analyses (the "report" a profiler would print).

use crate::advisor::WhatIf;
use crate::analysis::Analysis;
use std::fmt::Write as _;

/// Render an analysis as a fixed-width text report.
pub fn render(a: &Analysis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "kernel `{}` on {}", a.kernel_name, a.machine_name);
    let _ = writeln!(
        out,
        "occupancy: {} block(s)/SM, {} warps/SM",
        a.resident_blocks, a.resident_warps
    );
    let _ = writeln!(
        out,
        "predicted time: {:.4} ms  (bottleneck: {}; next: {})",
        a.predicted_seconds * 1e3,
        a.bottleneck,
        a.next_bottleneck
    );
    let _ = writeln!(
        out,
        "component times: instruction {:.4} ms | shared {:.4} ms | global {:.4} ms | atomic {:.4} ms",
        a.totals.instr * 1e3,
        a.totals.smem * 1e3,
        a.totals.gmem * 1e3,
        a.totals.atomic * 1e3
    );
    let _ = writeln!(
        out,
        "computational density {:.0}% | bank-conflict factor ×{:.2} | coalescing {:.0}% | atomic contention ×{:.2}",
        a.computational_density * 100.0,
        a.bank_conflict_factor,
        a.coalescing_efficiency * 100.0,
        a.atomic_contention_factor
    );
    if a.stages.len() > 1 {
        let _ = writeln!(
            out,
            "stages (serialized total {:.4} ms):",
            a.serialized_seconds * 1e3
        );
        let _ = writeln!(
            out,
            "  {:>5} {:>12} {:>12} {:>12} {:>12}  {:<20} {:>6} {:>6}",
            "stage",
            "instr ms",
            "shared ms",
            "global ms",
            "atomic ms",
            "bottleneck",
            "w_ins",
            "w_sh"
        );
        for s in &a.stages {
            let _ = writeln!(
                out,
                "  {:>5} {:>12.5} {:>12.5} {:>12.5} {:>12.5}  {:<20} {:>6} {:>6}",
                s.stage,
                s.times.instr * 1e3,
                s.times.smem * 1e3,
                s.times.gmem * 1e3,
                s.times.atomic * 1e3,
                s.bottleneck.to_string(),
                s.warps_instr,
                s.warps_smem
            );
        }
    }
    let causes: Vec<String> = a
        .stages
        .iter()
        .flat_map(|s| {
            s.causes
                .iter()
                .map(move |c| format!("stage {}: {}", s.stage, c))
        })
        .collect();
    if !causes.is_empty() {
        let _ = writeln!(out, "diagnosed causes:");
        let mut seen = std::collections::BTreeSet::new();
        for c in causes {
            if seen.insert(c.clone()) {
                let _ = writeln!(out, "  - {c}");
            }
        }
    }
    out
}

/// Render an analysis next to a measured time, with the relative error the
/// paper reports (5–15% in its case studies).
pub fn render_with_measured(a: &Analysis, measured_seconds: f64) -> String {
    let mut out = render(a);
    let err = (a.predicted_seconds - measured_seconds) / measured_seconds;
    let _ = writeln!(
        out,
        "measured: {:.4} ms | predicted: {:.4} ms | error {:+.1}%",
        measured_seconds * 1e3,
        a.predicted_seconds * 1e3,
        err * 100.0
    );
    out
}

/// Render a list of what-if estimates.
pub fn render_what_ifs(items: &[WhatIf]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "what-if estimates:");
    for w in items {
        let _ = writeln!(out, "  - {w}");
    }
    out
}
