//! The *traditional* algorithmic-level performance model (paper §3).
//!
//! The paper opens by showing why the conventional analysis fails:
//! programmers compute a sustained FLOP rate and a sustained algorithmic
//! bandwidth from the measured time, compare both against the machine
//! peaks, and call the kernel compute-bound or memory-bound. §3 lists the
//! failure modes — bookkeeping instructions are invisible, hardware
//! transactions differ from algorithmic bytes, and shared memory does not
//! appear at all. The cyclic-reduction solver is the motivating example:
//! "the application is neither computation-bound nor memory-bound, and can
//! only achieve a computational rate of 6 GFLOPS and a bandwidth of
//! 7 GB/s".
//!
//! This module implements that traditional model so the contrast is
//! reproducible: feed it the *algorithmic* FLOP and byte counts plus a
//! measured time, and it renders the verdict a roofline-style analysis
//! would give — which for CR is an unhelpful "bound by neither".

use gpa_hw::Machine;
use std::fmt;

/// The traditional model's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraditionalVerdict {
    /// Sustained FLOP rate is a large fraction of peak.
    ComputeBound,
    /// Sustained algorithmic bandwidth is a large fraction of peak.
    MemoryBound,
    /// Neither rate approaches its peak — the model has no explanation
    /// (the paper's cyclic-reduction situation).
    Unexplained,
}

impl fmt::Display for TraditionalVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraditionalVerdict::ComputeBound => "compute-bound",
            TraditionalVerdict::MemoryBound => "memory-bound",
            TraditionalVerdict::Unexplained => "bound by neither (unexplained)",
        };
        f.write_str(s)
    }
}

/// Output of the traditional algorithmic analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TraditionalAnalysis {
    /// Sustained FLOP/s from the algorithmic operation count.
    pub sustained_flops: f64,
    /// Sustained bytes/s from the algorithmic byte count.
    pub sustained_bandwidth: f64,
    /// `sustained_flops / peak_flops`.
    pub compute_fraction: f64,
    /// `sustained_bandwidth / peak_bandwidth`.
    pub memory_fraction: f64,
    /// The verdict, using `threshold` (default 0.5) on the fractions.
    pub verdict: TraditionalVerdict,
}

impl fmt::Display for TraditionalAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} GFLOPS ({:.0}% of peak), {:.1} GB/s ({:.0}% of peak) -> {}",
            self.sustained_flops / 1e9,
            self.compute_fraction * 100.0,
            self.sustained_bandwidth / 1e9,
            self.memory_fraction * 100.0,
            self.verdict
        )
    }
}

/// Run the traditional analysis: algorithmic `flops` and `bytes` (what a
/// complexity analysis counts — not hardware transactions), the measured
/// `seconds`, and a `threshold` on the peak fractions (the paper's
/// informal "close to peak"; 0.5 is generous).
pub fn traditional_analysis(
    machine: &Machine,
    flops: u64,
    bytes: u64,
    seconds: f64,
    threshold: f64,
) -> TraditionalAnalysis {
    let sustained_flops = flops as f64 / seconds;
    let sustained_bandwidth = bytes as f64 / seconds;
    let compute_fraction = sustained_flops / machine.peak_flops_sp();
    let memory_fraction = sustained_bandwidth / machine.peak_global_bandwidth();
    let verdict = if compute_fraction >= threshold && compute_fraction >= memory_fraction {
        TraditionalVerdict::ComputeBound
    } else if memory_fraction >= threshold {
        TraditionalVerdict::MemoryBound
    } else {
        TraditionalVerdict::Unexplained
    };
    TraditionalAnalysis {
        sustained_flops,
        sustained_bandwidth,
        compute_fraction,
        memory_fraction,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Machine {
        Machine::gtx285()
    }

    #[test]
    fn near_peak_flops_is_compute_bound() {
        // 400 GFLOPS of 710 peak in 1 ms.
        let a = traditional_analysis(&m(), 400_000_000, 4_000, 1e-3, 0.5);
        assert_eq!(a.verdict, TraditionalVerdict::ComputeBound);
        assert!(a.compute_fraction > 0.5);
    }

    #[test]
    fn near_peak_bandwidth_is_memory_bound() {
        // 120 GB/s of 159 peak in 1 ms.
        let a = traditional_analysis(&m(), 1_000, 120_000_000, 1e-3, 0.5);
        assert_eq!(a.verdict, TraditionalVerdict::MemoryBound);
    }

    #[test]
    fn paper_cyclic_reduction_numbers_are_unexplained() {
        // §5.2: "a computational rate of 6 GFLOPS and a bandwidth of
        // 7 GB/s" — the traditional model shrugs.
        let a = traditional_analysis(&m(), 6_000_000, 7_000_000, 1e-3, 0.5);
        assert_eq!(a.verdict, TraditionalVerdict::Unexplained);
        assert!(a.compute_fraction < 0.01);
        assert!(a.memory_fraction < 0.05);
        let text = format!("{a}");
        assert!(text.contains("neither"));
    }

    #[test]
    fn ties_break_toward_compute() {
        let a = traditional_analysis(&m(), 710_400_000, 158_976_000, 1e-3, 0.5);
        assert_eq!(a.verdict, TraditionalVerdict::ComputeBound);
    }
}
