//! What-if estimates: the paper's use of the model to price optimizations
//! and architectural changes *before* implementing them (§5).

use crate::analysis::{Component, Model};
use crate::input::ModelInput;
use gpa_hw::occupancy;
use gpa_sim::stats::GRAN_GT200;
use std::fmt;

/// Outcome of a hypothetical change.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIf {
    /// Short identifier (e.g. `"no-bank-conflicts"`).
    pub name: String,
    /// Human description of the change.
    pub description: String,
    /// Baseline predicted seconds.
    pub baseline_seconds: f64,
    /// Predicted seconds with the change applied.
    pub predicted_seconds: f64,
    /// `baseline / predicted`.
    pub speedup: f64,
    /// The bottleneck after the change.
    pub new_bottleneck: Component,
}

impl fmt::Display for WhatIf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: ×{:.2} ({:.3} ms → {:.3} ms), new bottleneck: {}",
            self.description,
            self.speedup,
            self.baseline_seconds * 1e3,
            self.predicted_seconds * 1e3,
            self.new_bottleneck
        )
    }
}

impl Model<'_> {
    fn what_if(
        &mut self,
        input: &ModelInput,
        name: &str,
        description: &str,
        modified: ModelInput,
    ) -> WhatIf {
        let base = self.analyze(input);
        let alt = self.analyze(&modified);
        WhatIf {
            name: name.to_owned(),
            description: description.to_owned(),
            baseline_seconds: base.predicted_seconds,
            predicted_seconds: alt.predicted_seconds,
            speedup: base.predicted_seconds / alt.predicted_seconds,
            new_bottleneck: alt.bottleneck,
        }
    }

    /// Predict the benefit of eliminating all shared-memory bank conflicts
    /// (the paper's CR → CR-NBC estimate, §5.2: ≈1.6×).
    pub fn what_if_no_bank_conflicts(&mut self, input: &ModelInput) -> WhatIf {
        let mut modified = input.clone();
        for s in &mut modified.stats.stages {
            s.smem_half_txns = s.smem_half_accesses;
        }
        self.what_if(
            input,
            "no-bank-conflicts",
            "eliminate shared-memory bank conflicts",
            modified,
        )
    }

    /// Predict the benefit of privatizing contended shared-memory atomics
    /// (per-warp/per-block partial results merged afterwards): every
    /// active half-warp then issues one contention-free transaction, and
    /// the serialization excess leaves the shared pipeline too.
    pub fn what_if_privatized_atomics(&mut self, input: &ModelInput) -> WhatIf {
        let mut modified = input.clone();
        for s in &mut modified.stats.stages {
            let excess = s.atomic_half_txns - s.atomic_half_accesses;
            s.smem_half_txns -= excess;
            s.atomic_half_txns = s.atomic_half_accesses;
        }
        self.what_if(
            input,
            "privatized-atomics",
            "privatize contended atomics into per-warp partials",
            modified,
        )
    }

    /// Predict the benefit of a smaller global transaction granularity
    /// (paper §5.3's 16-byte/4-byte experiments). `granularity_index`
    /// indexes [`gpa_sim::stats::GRANULARITIES`] (1 = 16 B, 2 = 4 B).
    ///
    /// # Panics
    ///
    /// Panics if `granularity_index` is out of range.
    pub fn what_if_granularity(&mut self, input: &ModelInput, granularity_index: usize) -> WhatIf {
        assert!(granularity_index < 3, "granularity index out of range");
        let mut modified = input.clone();
        for s in &mut modified.stats.stages {
            s.gmem[GRAN_GT200] = s.gmem[granularity_index];
        }
        let bytes = gpa_sim::stats::GRANULARITIES[granularity_index];
        self.what_if(
            input,
            "granularity",
            &format!("reduce the memory transaction granularity to {bytes} B"),
            modified,
        )
    }

    /// Predict the benefit of perfectly coalesced global accesses: every
    /// transferred byte is a requested byte.
    pub fn what_if_perfect_coalescing(&mut self, input: &ModelInput) -> WhatIf {
        let mut modified = input.clone();
        for s in &mut modified.stats.stages {
            s.gmem[GRAN_GT200].bytes = s.gmem_requested_bytes;
            s.gmem[GRAN_GT200].transactions = s
                .gmem_requested_bytes
                .div_ceil(128)
                .max(u64::from(s.gmem_requested_bytes > 0));
        }
        self.what_if(
            input,
            "perfect-coalescing",
            "perfectly coalesce all global accesses",
            modified,
        )
    }

    /// Predict the benefit of raising the resident-block ceiling (the
    /// paper's §5.1 architectural suggestion: 8 → 16 blocks would raise
    /// warp parallelism for small blocks).
    pub fn what_if_max_blocks(&mut self, input: &ModelInput, max_blocks: u32) -> WhatIf {
        let mut machine = self.machine().clone();
        machine.max_blocks_per_sm = max_blocks;
        let mut modified = input.clone();
        modified.occupancy = occupancy(&machine, input.resources);
        self.what_if(
            input,
            "max-blocks",
            &format!("allow {max_blocks} resident blocks per SM"),
            modified,
        )
    }

    /// Predict the benefit of scaling the per-SM register file and shared
    /// memory (the paper's §5.1 suggestion for the 32×32 tile: more
    /// resources ⇒ more resident warps at the same footprint).
    pub fn what_if_resources_scaled(&mut self, input: &ModelInput, factor: u32) -> WhatIf {
        let mut machine = self.machine().clone();
        machine.regs_per_sm *= factor;
        machine.smem_per_sm *= factor;
        let mut modified = input.clone();
        modified.occupancy = occupancy(&machine, input.resources);
        self.what_if(
            input,
            "scaled-resources",
            &format!("scale per-SM registers and shared memory ×{factor}"),
            modified,
        )
    }
}
