//! Model input: the info-extractor output (paper Figure 1).

use gpa_hw::{occupancy, KernelResources, Machine, Occupancy};
use gpa_sim::{DynamicStats, LaunchConfig};
use std::fmt;

/// Everything the model needs about one kernel launch: the launch shape,
/// the kernel's resource footprint (⇒ occupancy, paper Table 2), and the
/// dynamic statistics from the functional simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInput {
    /// Kernel name, for reports.
    pub kernel_name: String,
    /// Launch shape.
    pub launch: LaunchConfig,
    /// Declared resource usage.
    pub resources: KernelResources,
    /// Resident blocks/warps per SM implied by `resources`.
    pub occupancy: Occupancy,
    /// Dynamic statistics from the functional simulator.
    pub stats: DynamicStats,
}

/// Why [`extract`] rejected its inputs: the statistics and the launch
/// cannot describe the same run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputError {
    /// The statistics were collected over a different number of blocks
    /// than the launch declares — they came from a different run.
    BlockCountMismatch {
        /// Blocks covered by the statistics.
        stats_blocks: u64,
        /// Blocks the launch declares.
        launch_blocks: u32,
    },
}

impl fmt::Display for InputError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputError::BlockCountMismatch {
                stats_blocks,
                launch_blocks,
            } => write!(
                f,
                "statistics cover {stats_blocks} block(s) but the launch declares \
                 {launch_blocks}: they were collected for a different launch"
            ),
        }
    }
}

impl std::error::Error for InputError {}

/// Assemble a [`ModelInput`] — the paper's "info extractor" step.
///
/// # Errors
///
/// Returns [`InputError::BlockCountMismatch`] if `stats` is inconsistent
/// with `launch` (different block count), which indicates the statistics
/// came from a different run.
pub fn extract(
    machine: &Machine,
    kernel_name: impl Into<String>,
    launch: LaunchConfig,
    resources: KernelResources,
    stats: DynamicStats,
) -> Result<ModelInput, InputError> {
    if stats.blocks != u64::from(launch.num_blocks()) {
        return Err(InputError::BlockCountMismatch {
            stats_blocks: stats.blocks,
            launch_blocks: launch.num_blocks(),
        });
    }
    let occupancy = occupancy(machine, resources);
    Ok(ModelInput {
        kernel_name: kernel_name.into(),
        launch,
        resources,
        occupancy,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_computes_occupancy() {
        let m = Machine::gtx285();
        let stats = DynamicStats {
            blocks: 512,
            ..Default::default()
        };
        let input = extract(
            &m,
            "cr",
            LaunchConfig::new_1d(512, 256),
            KernelResources::new(12, 8448, 256),
            stats,
        )
        .unwrap();
        assert_eq!(input.occupancy.blocks, 1);
        assert_eq!(input.kernel_name, "cr");
    }

    #[test]
    fn mismatched_blocks_rejected() {
        let m = Machine::gtx285();
        let stats = DynamicStats::default(); // 0 blocks
        let err = extract(
            &m,
            "x",
            LaunchConfig::new_1d(4, 64),
            KernelResources::new(8, 0, 64),
            stats,
        )
        .unwrap_err();
        assert_eq!(
            err,
            InputError::BlockCountMismatch {
                stats_blocks: 0,
                launch_blocks: 4
            }
        );
        assert!(err.to_string().contains("different launch"), "{err}");
    }
}
