//! Model input: the info-extractor output (paper Figure 1).

use gpa_hw::{occupancy, KernelResources, Machine, Occupancy};
use gpa_sim::{DynamicStats, LaunchConfig};

/// Everything the model needs about one kernel launch: the launch shape,
/// the kernel's resource footprint (⇒ occupancy, paper Table 2), and the
/// dynamic statistics from the functional simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInput {
    /// Kernel name, for reports.
    pub kernel_name: String,
    /// Launch shape.
    pub launch: LaunchConfig,
    /// Declared resource usage.
    pub resources: KernelResources,
    /// Resident blocks/warps per SM implied by `resources`.
    pub occupancy: Occupancy,
    /// Dynamic statistics from the functional simulator.
    pub stats: DynamicStats,
}

/// Assemble a [`ModelInput`] — the paper's "info extractor" step.
///
/// # Panics
///
/// Panics if `stats` is inconsistent with `launch` (different block
/// count), which indicates the statistics came from a different run.
pub fn extract(
    machine: &Machine,
    kernel_name: impl Into<String>,
    launch: LaunchConfig,
    resources: KernelResources,
    stats: DynamicStats,
) -> ModelInput {
    assert_eq!(
        stats.blocks,
        u64::from(launch.num_blocks()),
        "statistics were collected for a different launch"
    );
    let occupancy = occupancy(machine, resources);
    ModelInput {
        kernel_name: kernel_name.into(),
        launch,
        resources,
        occupancy,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_computes_occupancy() {
        let m = Machine::gtx285();
        let stats = DynamicStats {
            blocks: 512,
            ..Default::default()
        };
        let input = extract(
            &m,
            "cr",
            LaunchConfig::new_1d(512, 256),
            KernelResources::new(12, 8448, 256),
            stats,
        );
        assert_eq!(input.occupancy.blocks, 1);
        assert_eq!(input.kernel_name, "cr");
    }

    #[test]
    #[should_panic(expected = "different launch")]
    fn mismatched_blocks_rejected() {
        let m = Machine::gtx285();
        let stats = DynamicStats::default(); // 0 blocks
        extract(
            &m,
            "x",
            LaunchConfig::new_1d(4, 64),
            KernelResources::new(8, 0, 64),
            stats,
        );
    }
}
